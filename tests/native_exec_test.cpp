#include "exec/native_exec.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exec/backend.hpp"
#include "flow/presets.hpp"
#include "ir/cemit.hpp"
#include "kernels/polybench.hpp"
#include "obs/attrib.hpp"
#include "runtime/parallel.hpp"

namespace polyast::exec {
namespace {

bool haveCompiler() {
  return std::system("command -v cc > /dev/null 2>&1") == 0;
}

/// Per-test-binary cache directory, fresh on every run so compile/cache
/// counter assertions are deterministic.
std::string freshCacheDir() {
  char tmpl[] = "/tmp/polyast_native_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "/tmp/polyast_native_test_fallback";
}

/// Test-scale parameters (same choice as polyastc --execute): small, but
/// enough trips for every loop kind to fire.
std::map<std::string, std::int64_t> testParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = name == "TSTEPS" ? 3 : 7;
  return params;
}

ir::Program transformed(const std::string& kernel,
                        const std::string& pipeline) {
  ir::Program p = kernels::buildKernel(kernel);
  flow::PassContext ctx;
  return flow::makePipeline(pipeline).run(p, ctx);
}

NativeBackendOptions strictOptions(const std::string& cacheDir) {
  NativeBackendOptions opts;
  opts.cacheDir = cacheDir;
  // The emitted TU must be warning-clean even under -Wextra.
  opts.extraFlags = {"-Wextra", "-Werror"};
  return opts;
}

/// Every kernel x both flows: the native run must match the sequential
/// oracle within the reduction tolerance, must not degrade, and must
/// report exactly the same parallel-construct counters as the
/// interpreted backend on the same program.
class NativeVsInterp
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {
};

TEST_P(NativeVsInterp, MatchesOracleAndInterpCounters) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  const auto& [kernel, pipeline] = GetParam();
  static std::string cacheDir = freshCacheDir();

  ir::Program p = transformed(kernel, pipeline);
  auto params = testParams(p);
  runtime::ThreadPool pool(4);

  NativeBackend native(strictOptions(cacheDir));
  native.prepare(p);
  ASSERT_EQ(native.degradedReason(), "");

  // Attribution parity rides along: with a profiler installed, the JIT
  // kernel must report the same construct rows through the ABI-v2 hooks
  // as the interpreted walker does through direct calls.
  obs::ConstructProfiler prof;
  prof.install();

  Context ctx = kernels::makeContext(p, params);
  Context oracle = kernels::makeContext(p, params);
  ParallelRunReport rep;
  VerifyResult check = native.verify(p, ctx, oracle, pool, &rep);
  EXPECT_TRUE(check.passed())
      << kernel << "/" << pipeline << ": maxAbsDiff=" << check.maxAbsDiff
      << " tolerance=" << check.tolerance;
  EXPECT_EQ(rep.backend, "native");
  EXPECT_EQ(rep.nativeFallbacks, 0) << rep.summary();
  EXPECT_EQ(prof.backend(), "native");
  std::vector<obs::ConstructRow> nativeRows = prof.rows();

  // Counting-semantics parity: the native shim counts constructs at the
  // same points the interpreted walker does.
  InterpBackend interp;
  Context ictx = kernels::makeContext(p, params);
  ParallelRunReport irep = interp.run(p, ictx, pool);
  EXPECT_EQ(prof.backend(), "interp");
  std::vector<obs::ConstructRow> interpRows = prof.rows();
  prof.uninstall();

  ASSERT_EQ(nativeRows.size(), interpRows.size())
      << kernel << "/" << pipeline;
  for (std::size_t i = 0; i < nativeRows.size(); ++i) {
    EXPECT_EQ(nativeRows[i].id, interpRows[i].id);
    EXPECT_EQ(nativeRows[i].kind, interpRows[i].kind);
    EXPECT_EQ(nativeRows[i].iter, interpRows[i].iter);
    EXPECT_EQ(nativeRows[i].enters, interpRows[i].enters)
        << kernel << "/" << pipeline << " construct " << nativeRows[i].id;
  }

  EXPECT_EQ(rep.doallLoops, irep.doallLoops);
  EXPECT_EQ(rep.guidedLoops, irep.guidedLoops);
  EXPECT_EQ(rep.reductionLoops, irep.reductionLoops);
  EXPECT_EQ(rep.pipelineLoops, irep.pipelineLoops);
  EXPECT_EQ(rep.pipelineDynamicLoops, irep.pipelineDynamicLoops);
  EXPECT_EQ(rep.pipeline3dLoops, irep.pipeline3dLoops);
  EXPECT_EQ(rep.reductionPipelineLoops, irep.reductionPipelineLoops);
  EXPECT_EQ(rep.sequentialFallbacks, irep.sequentialFallbacks);
}

std::vector<std::pair<std::string, std::string>> allCases() {
  std::vector<std::pair<std::string, std::string>> cases;
  for (const auto& k : kernels::allKernels())
    for (const char* pipeline : {"polyast", "polyast-notile"})
      cases.emplace_back(k.name, pipeline);
  return cases;
}

std::string caseName(
    const ::testing::TestParamInfo<std::pair<std::string, std::string>>&
        info) {
  std::string s = info.param.first + "_" + info.param.second;
  for (char& c : s)
    if (c == '-') c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NativeVsInterp,
                         ::testing::ValuesIn(allCases()), caseName);

/// Steady-state check at verification scale: the spatial extents cross
/// two full tiles plus a remainder, the time extent the time-tile size,
/// so the tiled fast path (not just boundary cases) runs natively.
TEST(NativeExec, VerificationScaleGemmAndSeidel) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  std::string cacheDir = freshCacheDir();
  runtime::ThreadPool pool(4);
  for (const char* kernel : {"gemm", "seidel-2d"}) {
    ir::Program p = transformed(kernel, "polyast");
    std::map<std::string, std::int64_t> params;
    for (const auto& name : p.params)
      params[name] = name == "TSTEPS" ? 7 : 69;  // 2*tile+5, timeTile+2
    NativeBackend native(strictOptions(cacheDir));
    Context ctx = kernels::makeContext(p, params);
    Context oracle = kernels::makeContext(p, params);
    ParallelRunReport rep;
    VerifyResult check = native.verify(p, ctx, oracle, pool, &rep);
    EXPECT_TRUE(check.passed())
        << kernel << ": maxAbsDiff=" << check.maxAbsDiff;
    EXPECT_EQ(rep.nativeFallbacks, 0) << rep.summary();
  }
}

TEST(NativeExec, CacheHitOnSecondBackend) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  std::string cacheDir = freshCacheDir();
  ir::Program p = transformed("gemm", "polyast");
  auto params = testParams(p);
  runtime::ThreadPool pool(2);

  NativeBackend first(strictOptions(cacheDir));
  Context c1 = kernels::makeContext(p, params);
  ParallelRunReport r1 = first.run(p, c1, pool);
  EXPECT_EQ(r1.nativeCompiles, 1);
  EXPECT_EQ(r1.nativeCacheHits, 0);

  // Same program content in a fresh backend instance: the shared object
  // is reused from disk, nothing recompiles.
  NativeBackend second(strictOptions(cacheDir));
  Context c2 = kernels::makeContext(p, params);
  ParallelRunReport r2 = second.run(p, c2, pool);
  EXPECT_EQ(r2.nativeCompiles, 0);
  EXPECT_EQ(r2.nativeCacheHits, 1);

  // Compile/cache-hit counts are consume-once: a re-run of an already
  // loaded kernel reports neither.
  Context c3 = kernels::makeContext(p, params);
  ParallelRunReport r3 = second.run(p, c3, pool);
  EXPECT_EQ(r3.nativeCompiles, 0);
  EXPECT_EQ(r3.nativeCacheHits, 0);
}

/// A cached shared object stamped with an older kernel ABI must be
/// evicted, not retried: the run that finds it degrades once (with the
/// abi-mismatch reason), deletes it, and the next backend instance
/// recompiles instead of re-degrading forever.
TEST(NativeExec, StaleAbiObjectIsEvictedNotRetried) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  namespace fs = std::filesystem;
  std::string cacheDir = freshCacheDir();
  ir::Program p = transformed("gemm", "polyast");
  auto params = testParams(p);
  runtime::ThreadPool pool(2);

  {
    // Scoped: the backend must dlclose its handle before the overwrite
    // below, or dlopen would hand the later instance the already-loaded
    // image for the same path instead of re-reading the file.
    NativeBackend first(strictOptions(cacheDir));
    Context c1 = kernels::makeContext(p, params);
    ParallelRunReport r1 = first.run(p, c1, pool);
    ASSERT_EQ(r1.nativeCompiles, 1);
    ASSERT_EQ(r1.nativeFallbacks, 0) << r1.summary();
  }

  // Overwrite the cached object with one stamped with the previous ABI,
  // as if it survived from before the hook-table bump.
  std::string so;
  for (const auto& e : fs::directory_iterator(cacheDir))
    if (e.path().extension() == ".so") so = e.path().string();
  ASSERT_FALSE(so.empty());
  std::string staleSrc = cacheDir + "/stale_abi.c";
  {
    std::ofstream f(staleSrc);
    f << "#include <stdint.h>\n"
         "int64_t polyast_kernel_abi(void) { return "
      << (ir::kNativeKernelAbi - 1)
      << "; }\n"
         "void polyast_kernel_run(const void* a) { (void)a; }\n";
  }
  std::string compile =
      "cc -shared -fPIC -O0 -o " + so + " " + staleSrc;
  ASSERT_EQ(std::system(compile.c_str()), 0);

  NativeBackend second(strictOptions(cacheDir));
  Context c2 = kernels::makeContext(p, params);
  ParallelRunReport r2 = second.run(p, c2, pool);
  EXPECT_EQ(r2.backend, "interp");
  EXPECT_EQ(r2.nativeFallbacks, 1);
  bool noted = false;
  for (const auto& n : r2.notes)
    if (n.find("abi-mismatch") != std::string::npos &&
        n.find("evicted") != std::string::npos)
      noted = true;
  EXPECT_TRUE(noted) << r2.summary();
  EXPECT_FALSE(fs::exists(so)) << "stale object still in the cache";

  NativeBackend third(strictOptions(cacheDir));
  Context c3 = kernels::makeContext(p, params);
  ParallelRunReport r3 = third.run(p, c3, pool);
  EXPECT_EQ(r3.backend, "native");
  EXPECT_EQ(r3.nativeCompiles, 1) << "eviction must force a recompile";
  EXPECT_EQ(r3.nativeFallbacks, 0) << r3.summary();
}

/// Regression for the stale-compiler cache-key bug: the shared-object
/// key must incorporate the compiler's identity probe (`--version`
/// output), so a toolchain upgrade — or a $POLYAST_JIT_CC switch between
/// same-named wrappers — recompiles instead of reusing an object built
/// by the old compiler. Same version → cache hit; changed version under
/// the identical compile command → recompile.
TEST(NativeExec, CompilerVersionChangeInvalidatesCacheKey) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  std::string cacheDir = freshCacheDir();
  std::string wrapper = cacheDir + "/cc-wrapper";
  auto writeWrapper = [&](const std::string& version) {
    {
      std::ofstream f(wrapper);
      f << "#!/bin/sh\n"
           "if [ \"$1\" = \"--version\" ]; then echo '"
        << version
        << "'; exit 0; fi\n"
           "exec cc \"$@\"\n";
    }
    std::filesystem::permissions(wrapper,
                                 std::filesystem::perms::owner_all |
                                     std::filesystem::perms::group_read |
                                     std::filesystem::perms::others_read);
  };
  writeWrapper("polyast test toolchain 1.0");
  const char* oldCc = std::getenv("POLYAST_JIT_CC");
  const std::string saved = oldCc ? oldCc : "";
  setenv("POLYAST_JIT_CC", wrapper.c_str(), 1);

  ir::Program p = transformed("gemm", "polyast");
  auto params = testParams(p);
  runtime::ThreadPool pool(2);

  {
    NativeBackend first(strictOptions(cacheDir));
    Context c1 = kernels::makeContext(p, params);
    ParallelRunReport r1 = first.run(p, c1, pool);
    EXPECT_EQ(r1.backend, "native") << r1.summary();
    EXPECT_EQ(r1.nativeCompiles, 1);
  }
  {
    // Same wrapper, same version: the probe is part of the key but
    // stable, so the object is reused.
    NativeBackend second(strictOptions(cacheDir));
    Context c2 = kernels::makeContext(p, params);
    ParallelRunReport r2 = second.run(p, c2, pool);
    EXPECT_EQ(r2.nativeCompiles, 0);
    EXPECT_EQ(r2.nativeCacheHits, 1);
  }
  writeWrapper("polyast test toolchain 2.0");
  {
    // Identical compile command, different --version output: the key
    // must change, so the stale object is NOT reused.
    NativeBackend third(strictOptions(cacheDir));
    Context c3 = kernels::makeContext(p, params);
    ParallelRunReport r3 = third.run(p, c3, pool);
    EXPECT_EQ(r3.backend, "native") << r3.summary();
    EXPECT_EQ(r3.nativeCompiles, 1) << "stale-compiler object reused";
    EXPECT_EQ(r3.nativeCacheHits, 0);
  }

  if (oldCc)
    setenv("POLYAST_JIT_CC", saved.c_str(), 1);
  else
    unsetenv("POLYAST_JIT_CC");
}

TEST(NativeExec, ForcedOffDegradesToInterp) {
  ir::Program p = transformed("gemm", "polyast");
  auto params = testParams(p);
  runtime::ThreadPool pool(2);

  NativeBackendOptions opts;
  opts.forceOff = true;
  NativeBackend native(opts);
  native.prepare(p);
  EXPECT_NE(native.degradedReason(), "");

  Context ctx = kernels::makeContext(p, params);
  Context oracle = kernels::makeContext(p, params);
  ParallelRunReport rep;
  VerifyResult check = native.verify(p, ctx, oracle, pool, &rep);
  // Degradation must still produce correct results via the interpreter.
  EXPECT_TRUE(check.passed());
  EXPECT_EQ(rep.backend, "interp");
  EXPECT_EQ(rep.nativeFallbacks, 1);
  bool noted = false;
  for (const auto& n : rep.notes)
    if (n.find("degraded to interpreter") != std::string::npos) noted = true;
  EXPECT_TRUE(noted) << rep.summary();
}

/// Satellite contract for CEmitOptions::withMain=false: a kernel-only
/// benchmark TU (no main, no seeder) that compiles standalone under
/// -Wall -Werror.
TEST(NativeExec, KernelOnlyTuCompilesWarningClean) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  ir::Program p = transformed("gemm", "polyast");
  ir::CEmitOptions opts;
  opts.openmp = false;
  opts.withMain = false;
  std::string src = ir::emitC(p, opts);
  EXPECT_EQ(src.find("int main"), std::string::npos);
  EXPECT_EQ(src.find("polyast_seed"), std::string::npos);

  std::string base = "/tmp/polyast_native_test_kernel_only";
  {
    std::ofstream f(base + ".c");
    f << src;
  }
  std::string compile = "cc -c -std=c11 -O2 -Wall -Werror -o " + base +
                        ".o " + base + ".c";
  EXPECT_EQ(std::system(compile.c_str()), 0) << src;
}

}  // namespace
}  // namespace polyast::exec
