#include "exec/native_exec.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exec/backend.hpp"
#include "flow/presets.hpp"
#include "ir/cemit.hpp"
#include "kernels/polybench.hpp"
#include "runtime/parallel.hpp"

namespace polyast::exec {
namespace {

bool haveCompiler() {
  return std::system("command -v cc > /dev/null 2>&1") == 0;
}

/// Per-test-binary cache directory, fresh on every run so compile/cache
/// counter assertions are deterministic.
std::string freshCacheDir() {
  char tmpl[] = "/tmp/polyast_native_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "/tmp/polyast_native_test_fallback";
}

/// Test-scale parameters (same choice as polyastc --execute): small, but
/// enough trips for every loop kind to fire.
std::map<std::string, std::int64_t> testParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = name == "TSTEPS" ? 3 : 7;
  return params;
}

ir::Program transformed(const std::string& kernel,
                        const std::string& pipeline) {
  ir::Program p = kernels::buildKernel(kernel);
  flow::PassContext ctx;
  return flow::makePipeline(pipeline).run(p, ctx);
}

NativeBackendOptions strictOptions(const std::string& cacheDir) {
  NativeBackendOptions opts;
  opts.cacheDir = cacheDir;
  // The emitted TU must be warning-clean even under -Wextra.
  opts.extraFlags = {"-Wextra", "-Werror"};
  return opts;
}

/// Every kernel x both flows: the native run must match the sequential
/// oracle within the reduction tolerance, must not degrade, and must
/// report exactly the same parallel-construct counters as the
/// interpreted backend on the same program.
class NativeVsInterp
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {
};

TEST_P(NativeVsInterp, MatchesOracleAndInterpCounters) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  const auto& [kernel, pipeline] = GetParam();
  static std::string cacheDir = freshCacheDir();

  ir::Program p = transformed(kernel, pipeline);
  auto params = testParams(p);
  runtime::ThreadPool pool(4);

  NativeBackend native(strictOptions(cacheDir));
  native.prepare(p);
  ASSERT_EQ(native.degradedReason(), "");

  Context ctx = kernels::makeContext(p, params);
  Context oracle = kernels::makeContext(p, params);
  ParallelRunReport rep;
  VerifyResult check = native.verify(p, ctx, oracle, pool, &rep);
  EXPECT_TRUE(check.passed())
      << kernel << "/" << pipeline << ": maxAbsDiff=" << check.maxAbsDiff
      << " tolerance=" << check.tolerance;
  EXPECT_EQ(rep.backend, "native");
  EXPECT_EQ(rep.nativeFallbacks, 0) << rep.summary();

  // Counting-semantics parity: the native shim counts constructs at the
  // same points the interpreted walker does.
  InterpBackend interp;
  Context ictx = kernels::makeContext(p, params);
  ParallelRunReport irep = interp.run(p, ictx, pool);
  EXPECT_EQ(rep.doallLoops, irep.doallLoops);
  EXPECT_EQ(rep.guidedLoops, irep.guidedLoops);
  EXPECT_EQ(rep.reductionLoops, irep.reductionLoops);
  EXPECT_EQ(rep.pipelineLoops, irep.pipelineLoops);
  EXPECT_EQ(rep.pipelineDynamicLoops, irep.pipelineDynamicLoops);
  EXPECT_EQ(rep.pipeline3dLoops, irep.pipeline3dLoops);
  EXPECT_EQ(rep.reductionPipelineLoops, irep.reductionPipelineLoops);
  EXPECT_EQ(rep.sequentialFallbacks, irep.sequentialFallbacks);
}

std::vector<std::pair<std::string, std::string>> allCases() {
  std::vector<std::pair<std::string, std::string>> cases;
  for (const auto& k : kernels::allKernels())
    for (const char* pipeline : {"polyast", "polyast-notile"})
      cases.emplace_back(k.name, pipeline);
  return cases;
}

std::string caseName(
    const ::testing::TestParamInfo<std::pair<std::string, std::string>>&
        info) {
  std::string s = info.param.first + "_" + info.param.second;
  for (char& c : s)
    if (c == '-') c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NativeVsInterp,
                         ::testing::ValuesIn(allCases()), caseName);

/// Steady-state check at verification scale: the spatial extents cross
/// two full tiles plus a remainder, the time extent the time-tile size,
/// so the tiled fast path (not just boundary cases) runs natively.
TEST(NativeExec, VerificationScaleGemmAndSeidel) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  std::string cacheDir = freshCacheDir();
  runtime::ThreadPool pool(4);
  for (const char* kernel : {"gemm", "seidel-2d"}) {
    ir::Program p = transformed(kernel, "polyast");
    std::map<std::string, std::int64_t> params;
    for (const auto& name : p.params)
      params[name] = name == "TSTEPS" ? 7 : 69;  // 2*tile+5, timeTile+2
    NativeBackend native(strictOptions(cacheDir));
    Context ctx = kernels::makeContext(p, params);
    Context oracle = kernels::makeContext(p, params);
    ParallelRunReport rep;
    VerifyResult check = native.verify(p, ctx, oracle, pool, &rep);
    EXPECT_TRUE(check.passed())
        << kernel << ": maxAbsDiff=" << check.maxAbsDiff;
    EXPECT_EQ(rep.nativeFallbacks, 0) << rep.summary();
  }
}

TEST(NativeExec, CacheHitOnSecondBackend) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  std::string cacheDir = freshCacheDir();
  ir::Program p = transformed("gemm", "polyast");
  auto params = testParams(p);
  runtime::ThreadPool pool(2);

  NativeBackend first(strictOptions(cacheDir));
  Context c1 = kernels::makeContext(p, params);
  ParallelRunReport r1 = first.run(p, c1, pool);
  EXPECT_EQ(r1.nativeCompiles, 1);
  EXPECT_EQ(r1.nativeCacheHits, 0);

  // Same program content in a fresh backend instance: the shared object
  // is reused from disk, nothing recompiles.
  NativeBackend second(strictOptions(cacheDir));
  Context c2 = kernels::makeContext(p, params);
  ParallelRunReport r2 = second.run(p, c2, pool);
  EXPECT_EQ(r2.nativeCompiles, 0);
  EXPECT_EQ(r2.nativeCacheHits, 1);

  // Compile/cache-hit counts are consume-once: a re-run of an already
  // loaded kernel reports neither.
  Context c3 = kernels::makeContext(p, params);
  ParallelRunReport r3 = second.run(p, c3, pool);
  EXPECT_EQ(r3.nativeCompiles, 0);
  EXPECT_EQ(r3.nativeCacheHits, 0);
}

TEST(NativeExec, ForcedOffDegradesToInterp) {
  ir::Program p = transformed("gemm", "polyast");
  auto params = testParams(p);
  runtime::ThreadPool pool(2);

  NativeBackendOptions opts;
  opts.forceOff = true;
  NativeBackend native(opts);
  native.prepare(p);
  EXPECT_NE(native.degradedReason(), "");

  Context ctx = kernels::makeContext(p, params);
  Context oracle = kernels::makeContext(p, params);
  ParallelRunReport rep;
  VerifyResult check = native.verify(p, ctx, oracle, pool, &rep);
  // Degradation must still produce correct results via the interpreter.
  EXPECT_TRUE(check.passed());
  EXPECT_EQ(rep.backend, "interp");
  EXPECT_EQ(rep.nativeFallbacks, 1);
  bool noted = false;
  for (const auto& n : rep.notes)
    if (n.find("degraded to interpreter") != std::string::npos) noted = true;
  EXPECT_TRUE(noted) << rep.summary();
}

/// Satellite contract for CEmitOptions::withMain=false: a kernel-only
/// benchmark TU (no main, no seeder) that compiles standalone under
/// -Wall -Werror.
TEST(NativeExec, KernelOnlyTuCompilesWarningClean) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  ir::Program p = transformed("gemm", "polyast");
  ir::CEmitOptions opts;
  opts.openmp = false;
  opts.withMain = false;
  std::string src = ir::emitC(p, opts);
  EXPECT_EQ(src.find("int main"), std::string::npos);
  EXPECT_EQ(src.find("polyast_seed"), std::string::npos);

  std::string base = "/tmp/polyast_native_test_kernel_only";
  {
    std::ofstream f(base + ".c");
    f << src;
  }
  std::string compile = "cc -c -std=c11 -O2 -Wall -Werror -o " + base +
                        ".o " + base + ".c";
  EXPECT_EQ(std::system(compile.c_str()), 0) << src;
}

}  // namespace
}  // namespace polyast::exec
