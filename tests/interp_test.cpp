#include "exec/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "support/error.hpp"

namespace polyast::exec {
namespace {

using ir::AffExpr;
using ir::AssignOp;
using ir::ProgramBuilder;

AffExpr v(const std::string& s) { return AffExpr::term(s); }

TEST(Context, AllocatesArraysFromParams) {
  ir::Program p = kernels::buildKernel("gemm");
  Context ctx(p, {{"NI", 3}, {"NJ", 4}, {"NK", 5}});
  EXPECT_EQ(ctx.buffer("C").size(), 12u);
  EXPECT_EQ(ctx.buffer("A").size(), 15u);
  EXPECT_EQ(ctx.dims("B"), (std::vector<std::int64_t>{5, 4}));
  EXPECT_THROW(ctx.buffer("nope"), Error);
  EXPECT_THROW(Context(p, {{"BAD", 1}}), Error);
}

TEST(Context, SeedIsDeterministicAndNameDependent) {
  ir::Program p = kernels::buildKernel("gemm");
  Context a(p), b(p);
  a.seedAll();
  b.seedAll();
  EXPECT_EQ(a.maxAbsDiff(b), 0.0);
  EXPECT_NE(a.buffer("A")[0], a.buffer("B")[0]);
  for (double x : a.buffer("A")) {
    EXPECT_GE(x, 0.5);
    EXPECT_LT(x, 1.5);
  }
}

TEST(Interp, GemmMatchesDirectComputation) {
  ir::Program p = kernels::buildKernel("gemm");
  std::int64_t NI = 5, NJ = 6, NK = 7;
  Context ctx(p, {{"NI", NI}, {"NJ", NJ}, {"NK", NK}});
  ctx.seedAll();
  // Snapshot inputs, compute the expected result directly.
  auto A = ctx.buffer("A");
  auto B = ctx.buffer("B");
  auto C = ctx.buffer("C");
  double alpha = ctx.buffer("alpha")[0], beta = ctx.buffer("beta")[0];
  run(p, ctx);
  for (std::int64_t i = 0; i < NI; ++i)
    for (std::int64_t j = 0; j < NJ; ++j) {
      double want = C[i * NJ + j] * beta;
      for (std::int64_t k = 0; k < NK; ++k)
        want += alpha * A[i * NK + k] * B[k * NJ + j];
      EXPECT_NEAR(ctx.buffer("C")[i * NJ + j], want, 1e-12);
    }
}

TEST(Interp, LoopBoundsAreMaxMin) {
  ProgramBuilder b("t");
  b.param("N", 10);
  b.array("A", {b.p("N")});
  ir::Bound lo;
  lo.parts = {AffExpr(2), AffExpr(4)};  // max(2,4) = 4
  ir::Bound hi;
  hi.parts = {v("N"), AffExpr(7)};  // min(10,7) = 7
  b.beginLoop("i", lo, hi);
  b.stmt("S", "A", {v("i")}, AssignOp::Set, ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  Context ctx(p);
  run(p, ctx);
  for (std::int64_t i = 0; i < 10; ++i)
    EXPECT_EQ(ctx.buffer("A")[i], (i >= 4 && i < 7) ? 1.0 : 0.0) << i;
}

TEST(Interp, GuardsSkipInstances) {
  ProgramBuilder b("t");
  b.param("N", 8);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {v("i")}, AssignOp::Set, ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  p.statements()[0]->guards.push_back(v("i") - AffExpr(3));  // i >= 3
  Context ctx(p);
  EXPECT_EQ(countInstances(p, ctx), 5);
  run(p, ctx);
  EXPECT_EQ(ctx.buffer("A")[2], 0.0);
  EXPECT_EQ(ctx.buffer("A")[3], 1.0);
}

TEST(Interp, CompoundAssignmentsAndUnaries) {
  ProgramBuilder b("t");
  b.array("x", {AffExpr(4)});
  b.stmt("S1", "x", {AffExpr(0)}, AssignOp::Set, ir::floatLit(9.0));
  b.stmt("S2", "x", {AffExpr(0)}, AssignOp::AddAssign, ir::floatLit(7.0));
  b.stmt("S3", "x", {AffExpr(1)}, AssignOp::Set,
         ir::unary(ir::UnOp::Sqrt, ir::arrayRef("x", {AffExpr(0)})));
  b.stmt("S4", "x", {AffExpr(2)}, AssignOp::Set,
         ir::select(ir::binary(ir::BinOp::Le, ir::floatLit(1.0),
                               ir::floatLit(2.0)),
                    ir::floatLit(5.0), ir::floatLit(6.0)));
  b.stmt("S5", "x", {AffExpr(3)}, AssignOp::DivAssign, ir::floatLit(2.0));
  ir::Program p = b.build();
  Context ctx(p);
  ctx.buffer("x")[3] = 10.0;
  run(p, ctx);
  EXPECT_DOUBLE_EQ(ctx.buffer("x")[0], 16.0);
  EXPECT_DOUBLE_EQ(ctx.buffer("x")[1], 4.0);
  EXPECT_DOUBLE_EQ(ctx.buffer("x")[2], 5.0);
  EXPECT_DOUBLE_EQ(ctx.buffer("x")[3], 5.0);
}

TEST(Interp, OutOfBoundsAccessThrows) {
  ProgramBuilder b("t");
  b.param("N", 4);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N") + AffExpr(1));  // one past the end
  b.stmt("S", "A", {v("i")}, AssignOp::Set, ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  Context ctx(p);
  EXPECT_THROW(run(p, ctx), Error);
}

TEST(Interp, TriangularLoopInstanceCount) {
  ir::Program p = kernels::buildKernel("trisolv");
  Context ctx(p, {{"N", 10}});
  // S1: 10, S2: 45, S3: 10.
  EXPECT_EQ(countInstances(p, ctx), 65);
}

TEST(Interp, CholeskyReconstructsMatrix) {
  // Build an SPD matrix, run cholesky, then verify L.L^T == original.
  ir::Program p = kernels::buildKernel("cholesky");
  std::int64_t N = 8;
  Context ctx = kernels::makeContext(p, {{"N", N}});
  std::vector<double> sym = ctx.buffer("A");
  run(p, ctx);
  // Reconstruct: L[i][j] = A[i][j] for i>j, diag 1/p[i].
  const auto& out = ctx.buffer("A");
  const auto& pdiag = ctx.buffer("p");
  auto L = [&](std::int64_t i, std::int64_t j) -> double {
    if (j > i) return 0.0;
    if (i == j) return 1.0 / pdiag[i];
    return out[i * N + j];
  };
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j <= i; ++j) {
      double dot = 0.0;
      for (std::int64_t k = 0; k < N; ++k) dot += L(i, k) * L(j, k);
      EXPECT_NEAR(dot, sym[i * N + j], 1e-9) << i << "," << j;
    }
}

TEST(Interp, Jacobi2dConvergesTowardMean) {
  ir::Program p = kernels::buildKernel("jacobi-2d-imper");
  Context ctx(p, {{"TSTEPS", 1}, {"N", 6}});
  ctx.seedAll();
  auto before = ctx.buffer("A");
  run(p, ctx);
  // Interior cell equals the 5-point average of the ORIGINAL array (the
  // imperfect kernel writes B first, then copies back).
  std::int64_t N = 6;
  for (std::int64_t i = 1; i < N - 1; ++i)
    for (std::int64_t j = 1; j < N - 1; ++j) {
      double want = 0.2 * (before[i * N + j] + before[i * N + j - 1] +
                           before[i * N + j + 1] + before[(i + 1) * N + j] +
                           before[(i - 1) * N + j]);
      EXPECT_NEAR(ctx.buffer("A")[i * N + j], want, 1e-12);
    }
}

/// Every kernel must execute cleanly at its default (test-scale) sizes —
/// this catches subscript/bounds mistakes in the kernel definitions.
class AllKernelsRun : public ::testing::TestWithParam<std::string> {};

TEST_P(AllKernelsRun, ExecutesInBounds) {
  ir::Program p = kernels::buildKernel(GetParam());
  Context ctx = kernels::makeContext(p);
  EXPECT_NO_THROW(run(p, ctx)) << GetParam();
  // Output must be finite everywhere.
  for (const auto& arr : p.arrays)
    for (double x : ctx.buffer(arr.name))
      ASSERT_TRUE(std::isfinite(x)) << GetParam() << " " << arr.name;
}

INSTANTIATE_TEST_SUITE_P(PolyBench, AllKernelsRun, ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& k : kernels::allKernels())
                             names.push_back(k.name);
                           return names;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace polyast::exec
