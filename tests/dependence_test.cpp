#include "poly/dependence.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <tuple>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"

namespace polyast::poly {
namespace {

using ir::AffExpr;

bool hasDep(const PoDG& g, int src, int dst, DepKind kind) {
  for (const auto& d : g.deps)
    if (d.srcId == src && d.dstId == dst && d.kind == kind) return true;
  return false;
}

TEST(Dependences, GemmBasicEdges) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  // S1 (id 0) writes C, S2 (id 1) accumulates into C.
  EXPECT_TRUE(hasDep(g, 0, 1, DepKind::Flow));
  // S2 self-dependence along k (the reduction).
  EXPECT_TRUE(hasDep(g, 1, 1, DepKind::Flow));
  EXPECT_TRUE(hasDep(g, 1, 1, DepKind::Output));
  // No dependence back from S2 to S1.
  EXPECT_FALSE(hasDep(g, 1, 0, DepKind::Flow));
  // The self flow dep is carried by the innermost common loop (level 3).
  bool level3 = false;
  for (const auto& d : g.deps)
    if (d.srcId == 1 && d.dstId == 1 && d.kind == DepKind::Flow &&
        d.level == 3)
      level3 = true;
  EXPECT_TRUE(level3);
}

TEST(Dependences, ReductionFlagOnAccumulation) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  for (const auto& d : g.deps) {
    if (d.srcId == 1 && d.dstId == 1 && d.array == "C") {
      EXPECT_TRUE(d.fromReduction());
    }
  }
  for (const auto& d : g.deps) {
    if (d.srcId == 0 && d.dstId == 1) {
      EXPECT_FALSE(d.fromReduction());
    }
  }
}

TEST(ReductionClassification, GemmSelfEdgeRelaxable) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  bool sawSelf = false;
  for (const auto& d : g.deps) {
    if (d.srcId != 1 || d.dstId != 1 || d.array != "C") continue;
    sawSelf = true;
    EXPECT_EQ(d.reduction, ReductionClass::Relaxable) << d.reductionWhy;
    EXPECT_TRUE(d.relaxable());
    EXPECT_EQ(d.reductionOp, "+=");
    EXPECT_NE(d.reductionWhy.find("pure self-accumulation"),
              std::string::npos)
        << d.reductionWhy;
  }
  EXPECT_TRUE(sawSelf);
}

TEST(ReductionClassification, SelfFeedbackUnproven) {
  // A[i] += A[i] * B[k]: the contribution depends on the running value of
  // the accumulator, so reordering the k instances is not a pure
  // reassociation. The syntactic flag is forced on to prove the
  // classification never trusts it.
  ir::ProgramBuilder b("selffeed");
  b.param("N", 8);
  b.array("A", {b.p("N")}).array("B", {b.p("N")});
  b.beginLoop("i", 0, b.p("N")).beginLoop("k", 0, b.p("N"));
  b.stmt("S", "A", {b.p("i")}, ir::AssignOp::AddAssign,
         ir::arrayRef("A", {b.p("i")}) * ir::arrayRef("B", {b.p("k")}));
  b.endLoop().endLoop();
  ir::Program p = b.build();
  p.statements()[0]->isReductionUpdate = true;  // never trusted
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  bool sawSelf = false;
  for (const auto& d : g.deps) {
    if (d.srcId != 0 || d.dstId != 0 || d.kind == DepKind::Input) continue;
    sawSelf = true;
    EXPECT_EQ(d.reduction, ReductionClass::Unproven) << d.reductionWhy;
    EXPECT_NE(d.reductionWhy.find("read-modify-write"), std::string::npos)
        << d.reductionWhy;
  }
  EXPECT_TRUE(sawSelf);
}

TEST(ReductionClassification, NonWhitelistOperatorUnproven) {
  // A[i] *= B[k] with a forced reduction flag: *= is not in the
  // associative/commutative whitelist.
  ir::ProgramBuilder b("scaledown");
  b.param("N", 8);
  b.array("A", {b.p("N")}).array("B", {b.p("N")});
  b.beginLoop("i", 0, b.p("N")).beginLoop("k", 0, b.p("N"));
  b.stmt("S", "A", {b.p("i")}, ir::AssignOp::MulAssign,
         ir::arrayRef("B", {b.p("k")}));
  b.endLoop().endLoop();
  ir::Program p = b.build();
  p.statements()[0]->isReductionUpdate = true;  // never trusted
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  bool sawSelf = false;
  for (const auto& d : g.deps) {
    if (d.srcId != 0 || d.dstId != 0 || d.kind == DepKind::Input) continue;
    sawSelf = true;
    EXPECT_EQ(d.reduction, ReductionClass::Unproven) << d.reductionWhy;
    EXPECT_NE(d.reductionWhy.find("whitelist"), std::string::npos)
        << d.reductionWhy;
  }
  EXPECT_TRUE(sawSelf);
}

TEST(ReductionClassification, InterveningSetWriteUnproven) {
  // A plain store into the accumulator array inside the carrying loop:
  // reordering the accumulation could move instances across it, and
  // subscript disambiguation is deliberately not attempted (may-alias).
  ir::ProgramBuilder b("aliased");
  b.param("N", 8);
  b.array("A", {b.p("N")}).array("B", {b.p("N"), b.p("N")});
  b.beginLoop("i", 0, b.p("N")).beginLoop("k", 0, b.p("N"));
  b.stmt("S1", "A", {b.p("i")}, ir::AssignOp::AddAssign,
         ir::arrayRef("B", {b.p("i"), b.p("k")}));
  b.stmt("S2", "A", {AffExpr(0)}, ir::AssignOp::Set, ir::floatLit(0.0));
  b.endLoop().endLoop();
  Scop scop = extractScop(b.build());
  PoDG g = computeDependences(scop);
  bool sawSelf = false;
  for (const auto& d : g.deps) {
    if (d.srcId != 0 || d.dstId != 0 || d.kind == DepKind::Input) continue;
    sawSelf = true;
    EXPECT_EQ(d.reduction, ReductionClass::Unproven) << d.reductionWhy;
    EXPECT_NE(d.reductionWhy.find("intervening may-alias write"),
              std::string::npos)
        << d.reductionWhy;
  }
  EXPECT_TRUE(sawSelf);
}

TEST(ReductionClassification, SiblingAccumulationStaysRelaxable) {
  // Two additive accumulations into the same array are jointly
  // reassociable (unrolled copies of one update must keep their proof on
  // the transformed program).
  ir::ProgramBuilder b("siblings");
  b.param("N", 8);
  b.array("A", {b.p("N")}).array("B", {b.p("N"), b.p("N")});
  b.beginLoop("i", 0, b.p("N")).beginLoop("k", 0, b.p("N"));
  b.stmt("S1", "A", {b.p("i")}, ir::AssignOp::AddAssign,
         ir::arrayRef("B", {b.p("i"), b.p("k")}));
  b.stmt("S2", "A", {b.p("i")}, ir::AssignOp::AddAssign,
         ir::arrayRef("B", {b.p("k"), b.p("i")}));
  b.endLoop().endLoop();
  Scop scop = extractScop(b.build());
  PoDG g = computeDependences(scop);
  bool sawSelf = false;
  for (const auto& d : g.deps) {
    if (d.srcId != d.dstId || d.kind == DepKind::Input) continue;
    if (!d.fromReduction()) continue;
    sawSelf = true;
    EXPECT_EQ(d.reduction, ReductionClass::Relaxable) << d.reductionWhy;
  }
  EXPECT_TRUE(sawSelf);
}

TEST(Dependences, StencilDistances) {
  // B[i] = A[i-1] + A[i+1]; A[i] = B[i]  (jacobi-1d inner step)
  ir::Program p = kernels::buildKernel("jacobi-1d-imper");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  auto vecs = dependenceVectors(scop, g);
  // There is a t-carried flow dep S2 (A writer, id 1) -> S1 (A reader,
  // id 0). The analysis is memory-based (all aliased pairs), so the time
  // distance has min 1 but is unbounded above.
  bool found = false;
  for (const auto& v : vecs) {
    if (v.srcId == 1 && v.dstId == 0 && v.kind == DepKind::Flow &&
        v.elems.size() == 1 && v.elems[0].min && *v.elems[0].min == 1) {
      found = true;
      EXPECT_FALSE(v.elems[0].max.has_value());  // parametric upper range
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dependences, Seidel2dUniformVectors) {
  ir::Program p = kernels::buildKernel("seidel-2d");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  auto vecs = dependenceVectors(scop, g);
  // The forward (lexicographically ordered) memory-based dependences have
  // non-negative time distance; space distances stay within the stencil
  // radius of 1 below, i.e. min >= -1 everywhere.
  ASSERT_FALSE(vecs.empty());
  bool sameTimeDep = false;
  for (const auto& v : vecs) {
    ASSERT_EQ(v.elems.size(), 3u);
    ASSERT_TRUE(v.elems[0].min.has_value());
    EXPECT_GE(*v.elems[0].min, 0);
    for (int k : {1, 2}) {
      ASSERT_TRUE(v.elems[k].min.has_value()) << k;
      EXPECT_GE(*v.elems[k].min, -1);
    }
    // The intra-timestep dependences (t distance exactly 0) are the uniform
    // (1,-1)...(0,1) stencil vectors.
    if (v.elems[0].max && *v.elems[0].max == 0) {
      sameTimeDep = true;
      for (int k : {1, 2}) {
        ASSERT_TRUE(v.elems[k].max.has_value());
        EXPECT_LE(*v.elems[k].max, 1);
      }
    }
  }
  EXPECT_TRUE(sameTimeDep);
}

TEST(Dependences, SCCsOf2mm) {
  ir::Program p = kernels::buildKernel("2mm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  std::vector<int> ids{0, 1, 2, 3};
  std::vector<bool> enabled(g.deps.size(), true);
  for (std::size_t i = 0; i < g.deps.size(); ++i)
    if (g.deps[i].kind == DepKind::Input) enabled[i] = false;
  auto sccs = stronglyConnectedComponents(ids, g, enabled);
  // Every statement is its own SCC (no cycles between distinct statements).
  EXPECT_EQ(sccs.size(), 4u);
  // Topological order: R (0) before S (1) before U (3); T (2) before U (3).
  auto pos = [&](int id) {
    for (std::size_t i = 0; i < sccs.size(); ++i)
      for (int v : sccs[i])
        if (v == id) return i;
    return sccs.size();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(Dependences, CyclicSCCDetected) {
  // for i: { A[i] = B[i-1]; B[i] = A[i]; }  -- A and B form one SCC at the
  // statement level via the loop-carried B edge and the intra-iteration A
  // edge.
  ir::ProgramBuilder b("t");
  b.param("N", 8);
  b.array("A", {b.p("N")});
  b.array("B", {b.p("N")});
  b.beginLoop("i", 1, b.p("N"));
  b.stmt("S1", "A", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::arrayRef("B", {AffExpr::term("i") - AffExpr(1)}));
  b.stmt("S2", "B", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {AffExpr::term("i")}));
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  std::vector<bool> enabled(g.deps.size(), true);
  auto sccs = stronglyConnectedComponents({0, 1}, g, enabled);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0], (std::vector<int>{0, 1}));
}

/// Brute-force oracle: enumerate all statement instances in execution
/// order, record their accessed cells, and compare the set of dependent
/// ordered pairs against the dependence polyhedra evaluated at fixed
/// parameter values.
class DependenceOracle : public ::testing::TestWithParam<std::string> {};

struct Instance {
  int stmtId;
  std::vector<std::int64_t> iters;
};

TEST_P(DependenceOracle, MatchesBruteForce) {
  ir::Program p = kernels::buildKernel(GetParam());
  // Shrink every parameter to keep the pair enumeration small.
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 2 : 5;
  ScopOptions opt;
  opt.paramMin = 2;
  Scop scop = extractScop(p, opt);
  PoDG g = computeDependences(scop);

  // Enumerate instances in execution order.
  std::vector<Instance> trace;
  std::map<std::string, std::int64_t> env(params.begin(), params.end());
  std::function<void(const ir::NodePtr&)> walk = [&](const ir::NodePtr& n) {
    switch (n->kind) {
      case ir::Node::Kind::Block:
        for (const auto& c : std::static_pointer_cast<ir::Block>(n)->children)
          walk(c);
        break;
      case ir::Node::Kind::Loop: {
        auto l = std::static_pointer_cast<ir::Loop>(n);
        std::int64_t lo = l->lower.parts[0].evaluate(env);
        for (const auto& part : l->lower.parts)
          lo = std::max(lo, part.evaluate(env));
        std::int64_t hi = l->upper.parts[0].evaluate(env);
        for (const auto& part : l->upper.parts)
          hi = std::min(hi, part.evaluate(env));
        for (std::int64_t v = lo; v < hi; ++v) {
          env[l->iter] = v;
          walk(l->body);
        }
        env.erase(l->iter);
        break;
      }
      case ir::Node::Kind::Stmt: {
        auto s = std::static_pointer_cast<ir::Stmt>(n);
        Instance inst;
        inst.stmtId = s->id;
        const auto& ps = scop.byId(s->id);
        for (const auto& it : ps.iters) inst.iters.push_back(env.at(it));
        trace.push_back(std::move(inst));
        break;
      }
    }
  };
  walk(p.root);

  // Accessed cells per instance.
  auto cellsOf = [&](const Instance& inst, bool writes) {
    std::set<std::pair<std::string, std::vector<std::int64_t>>> cells;
    const auto& ps = scop.byId(inst.stmtId);
    std::map<std::string, std::int64_t> e(params.begin(), params.end());
    for (std::size_t k = 0; k < ps.iters.size(); ++k)
      e[ps.iters[k]] = inst.iters[k];
    for (const auto& a : ps.accesses) {
      if (a.isWrite != writes) continue;
      std::vector<std::int64_t> idx;
      for (const auto& s : a.subs) idx.push_back(s.evaluate(e));
      cells.insert({a.array, idx});
    }
    return cells;
  };

  // Brute-force dependent ordered pairs (flow/anti/output only).
  using Pair = std::tuple<int, std::vector<std::int64_t>, int,
                          std::vector<std::int64_t>>;
  std::set<Pair> brute;
  std::vector<std::set<std::pair<std::string, std::vector<std::int64_t>>>>
      wcells(trace.size()), rcells(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    wcells[i] = cellsOf(trace[i], true);
    rcells[i] = cellsOf(trace[i], false);
  }
  auto intersects = [](const auto& a, const auto& b) {
    for (const auto& x : a)
      if (b.count(x)) return true;
    return false;
  };
  for (std::size_t i = 0; i < trace.size(); ++i)
    for (std::size_t j = i + 1; j < trace.size(); ++j) {
      bool dep = intersects(wcells[i], wcells[j]) ||
                 intersects(wcells[i], rcells[j]) ||
                 intersects(rcells[i], wcells[j]);
      if (dep)
        brute.insert({trace[i].stmtId, trace[i].iters, trace[j].stmtId,
                      trace[j].iters});
    }

  // Polyhedral pairs: instantiate each dependence polyhedron at the fixed
  // parameter values and enumerate.
  std::set<Pair> polyPairs;
  for (const auto& d : g.deps) {
    if (d.kind == DepKind::Input) continue;
    IntSet s = d.poly;
    std::size_t base = d.srcDim + d.dstDim;
    for (std::size_t pi = 0; pi < scop.params.size(); ++pi) {
      std::vector<std::int64_t> row(s.numVars(), 0);
      row[base + pi] = 1;
      s.addEquality(std::move(row), -params.at(scop.params[pi]));
    }
    if (s.isEmpty()) continue;
    s.enumerate([&](const std::vector<std::int64_t>& pt) {
      std::vector<std::int64_t> src(pt.begin(),
                                    pt.begin() + static_cast<long>(d.srcDim));
      std::vector<std::int64_t> dst(
          pt.begin() + static_cast<long>(d.srcDim),
          pt.begin() + static_cast<long>(d.srcDim + d.dstDim));
      polyPairs.insert({d.srcId, src, d.dstId, dst});
      return true;
    });
  }

  // Every brute-force pair must be covered (soundness) and, because our
  // systems are exact for these kernels, the polyhedral set must not
  // contain spurious pairs either (precision).
  for (const auto& pr : brute)
    EXPECT_TRUE(polyPairs.count(pr))
        << GetParam() << ": missed dependence pair stmt" << std::get<0>(pr)
        << " -> stmt" << std::get<2>(pr);
  for (const auto& pr : polyPairs)
    EXPECT_TRUE(brute.count(pr))
        << GetParam() << ": spurious dependence pair stmt"
        << std::get<0>(pr) << " -> stmt" << std::get<2>(pr);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, DependenceOracle,
    ::testing::Values("gemm", "2mm", "atax", "bicg", "mvt", "trisolv",
                      "jacobi-1d-imper", "seidel-2d", "gesummv", "syrk"),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

}  // namespace
}  // namespace polyast::poly
