// Observability-layer tests: span nesting (including across threads),
// histogram bucket semantics, exporter round-trips through the bundled
// JSON parser, the pipeline integration (one span per executed pass, the
// FlowReport-over-registry contract, continue-after-failure verification),
// and the parallel execution harness validated against the sequential
// interpreter.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "exec/par_exec.hpp"
#include "flow/presets.hpp"
#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace polyast::obs {
namespace {

const SpanRecord* findSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const auto& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

TEST(Trace, DisabledSpanIsInertAndRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Span s(tracer, "outer", "test");
    EXPECT_FALSE(s.active());
    s.attr("k", std::int64_t{1});  // must be a no-op, not a crash
  }
  tracer.instant("i", "test");
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Trace, LazySpanCostsNothingWhenDisabled) {
  // The disabled-cost guarantee for dynamic names and attributes: the
  // builder lambdas must never run while the tracer is off — a disabled
  // run pays one relaxed atomic load, no string assembly.
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  int nameBuilds = 0;
  int attrBuilds = 0;
  {
    Span s(
        tracer,
        [&] {
          ++nameBuilds;
          return std::string("lazy:name");
        },
        "test");
    EXPECT_FALSE(s.active());
    s.attrLazy("k", [&] {
      ++attrBuilds;
      return std::int64_t{42};
    });
  }
  EXPECT_EQ(nameBuilds, 0);
  EXPECT_EQ(attrBuilds, 0);
  EXPECT_TRUE(tracer.spans().empty());

  // Enabled: both builders run exactly once and land in the record.
  tracer.setEnabled(true);
  {
    Span s(
        tracer,
        [&] {
          ++nameBuilds;
          return std::string("lazy:name");
        },
        "test");
    EXPECT_TRUE(s.active());
    s.attrLazy("k", [&] {
      ++attrBuilds;
      return std::int64_t{42};
    });
  }
  EXPECT_EQ(nameBuilds, 1);
  EXPECT_EQ(attrBuilds, 1);
  std::vector<SpanRecord> spans = tracer.spans();
  const SpanRecord* rec = findSpan(spans, "lazy:name");
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->attrs.size(), 1u);
  EXPECT_EQ(rec->attrs[0].first, "k");
  EXPECT_EQ(std::get<std::int64_t>(rec->attrs[0].second), 42);
}

TEST(Trace, NestingWithinAThreadAndIsolationAcrossThreads) {
  Tracer tracer;
  tracer.setEnabled(true);
  {
    Span outer(tracer, "outer", "test");
    Span inner(tracer, "inner", "test");
    // Sibling work on other threads must not parent under this thread's
    // open spans.
    std::thread a([&] {
      tracer.nameCurrentThread("worker-a");
      Span s(tracer, "thread-a", "test");
    });
    std::thread b([&] { Span s(tracer, "thread-b", "test"); });
    a.join();
    b.join();
  }
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord* outer = findSpan(spans, "outer");
  const SpanRecord* inner = findSpan(spans, "inner");
  const SpanRecord* ta = findSpan(spans, "thread-a");
  const SpanRecord* tb = findSpan(spans, "thread-b");
  ASSERT_TRUE(outer && inner && ta && tb);
  EXPECT_EQ(outer->parentId, 0u);
  EXPECT_EQ(inner->parentId, outer->id);
  EXPECT_EQ(ta->parentId, 0u);
  EXPECT_EQ(tb->parentId, 0u);
  EXPECT_EQ(outer->threadId, inner->threadId);
  EXPECT_NE(ta->threadId, outer->threadId);
  EXPECT_NE(tb->threadId, outer->threadId);
  EXPECT_NE(ta->threadId, tb->threadId);
  // Time containment (what Chrome uses to nest): the child started no
  // earlier and ended no later than its parent.
  EXPECT_GE(inner->startNs, outer->startNs);
  EXPECT_LE(inner->startNs + inner->durNs, outer->startNs + outer->durNs);
  auto names = tracer.threadNames();
  ASSERT_TRUE(names.count(ta->threadId));
  EXPECT_EQ(names.at(ta->threadId), "worker-a");
}

TEST(Trace, EndIsIdempotentAndClearResetsEpoch) {
  Tracer tracer;
  tracer.setEnabled(true);
  Span s(tracer, "once", "test");
  s.end();
  s.end();
  EXPECT_EQ(tracer.spans().size(), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Metrics, HistogramBucketBoundaries) {
  Histogram h({1.0, 10.0, 100.0});
  // Bucket i counts x <= bounds[i]: boundary values land in the earlier
  // bucket, everything above the last bound in the overflow bucket.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.0000001);
  h.observe(10.0);
  h.observe(100.0);
  h.observe(1e6);
  auto buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Metrics, ExpBoundsShape) {
  auto b = expBounds(2.0, 4.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 2.0);
  EXPECT_DOUBLE_EQ(b[1], 8.0);
  EXPECT_DOUBLE_EQ(b[2], 32.0);
}

TEST(Metrics, RegistrySharesInstrumentsByNameAndSurvivesReset) {
  Registry reg;
  Counter& c1 = reg.counter("x");
  Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  reg.gauge("g").set(2.5);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.note("n", "hello");
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("x"), 3);
  EXPECT_EQ(snap.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.notes.at("n"), "hello");
  reg.reset();
  c1.add(1);  // reference from before reset() must still be live
  EXPECT_EQ(reg.snapshot().counter("x"), 1);
  EXPECT_TRUE(reg.snapshot().notes.empty());
}

TEST(Json, WriterEscapesAndParserRoundTrips) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginObject();
  w.key("quote\"and\\slash").value("line\nbreak\ttab");
  w.key("num").value(-12.5);
  w.key("int").value(std::int64_t{-7});
  w.key("flag").value(true);
  w.key("nil").null();
  w.key("arr").beginArray().value(1).value(2).endArray();
  w.endObject();
  JsonValue v = parseJson(out.str());
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("quote\"and\\slash")->text, "line\nbreak\ttab");
  EXPECT_DOUBLE_EQ(v.find("num")->number, -12.5);
  EXPECT_DOUBLE_EQ(v.find("int")->number, -7.0);
  EXPECT_TRUE(v.find("flag")->boolValue);
  EXPECT_EQ(v.find("nil")->kind, JsonValue::Kind::Null);
  ASSERT_EQ(v.find("arr")->items.size(), 2u);
  EXPECT_THROW(parseJson("{\"unterminated\": "), Error);
  EXPECT_THROW(parseJson("{} trailing"), Error);
}

TEST(Export, ChromeTraceRoundTrip) {
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.nameCurrentThread("main");
  {
    Span outer(tracer, "outer", "flow");
    outer.attr("program", "gemm");
    outer.attr("count", std::int64_t{3});
    Span inner(tracer, "inner", "pass");
    inner.attr("ok", true);
  }
  tracer.instant("mark", "verify");

  std::ostringstream out;
  writeChromeTrace(out, tracer);
  JsonValue v = parseJson(out.str());
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("displayTimeUnit")->text, "ms");
  const JsonValue* events = v.find("traceEvents");
  ASSERT_TRUE(events && events->isArray());
  bool sawThreadName = false, sawOuter = false, sawInner = false,
       sawInstant = false;
  for (const auto& ev : events->items) {
    const std::string& ph = ev.find("ph")->text;
    const std::string& name = ev.find("name")->text;
    if (ph == "M" && name == "thread_name") {
      sawThreadName = true;
      EXPECT_EQ(ev.find("args")->find("name")->text, "main");
    } else if (ph == "X" && name == "outer") {
      sawOuter = true;
      EXPECT_EQ(ev.find("cat")->text, "flow");
      EXPECT_EQ(ev.find("args")->find("program")->text, "gemm");
      EXPECT_DOUBLE_EQ(ev.find("args")->find("count")->number, 3.0);
      EXPECT_GE(ev.find("dur")->number, 0.0);
    } else if (ph == "X" && name == "inner") {
      sawInner = true;
      // parent_id cross-references the enclosing span's span_id.
      EXPECT_TRUE(ev.find("args")->find("parent_id"));
      EXPECT_TRUE(ev.find("args")->find("ok")->boolValue);
    } else if (ph == "i" && name == "mark") {
      sawInstant = true;
      EXPECT_EQ(ev.find("s")->text, "t");
    }
  }
  EXPECT_TRUE(sawThreadName);
  EXPECT_TRUE(sawOuter);
  EXPECT_TRUE(sawInner);
  EXPECT_TRUE(sawInstant);
}

TEST(Export, MetricsJsonAndCsvRoundTrip) {
  Registry reg;
  reg.counter("a.count").add(42);
  reg.gauge("b.gauge").set(1.25);
  Histogram& h = reg.histogram("c.hist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  reg.note("d.note", "free \"text\"");
  auto snap = reg.snapshot();

  std::ostringstream out;
  writeMetricsJson(out, snap);
  JsonValue v = parseJson(out.str());
  EXPECT_EQ(v.find("schema")->text, "polyast-metrics-v1");
  EXPECT_DOUBLE_EQ(v.find("counters")->find("a.count")->number, 42.0);
  EXPECT_DOUBLE_EQ(v.find("gauges")->find("b.gauge")->number, 1.25);
  const JsonValue* hist = v.find("histograms")->find("c.hist");
  ASSERT_TRUE(hist);
  ASSERT_EQ(hist->find("bounds")->items.size(), 2u);
  ASSERT_EQ(hist->find("bucket_counts")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(hist->find("bucket_counts")->items[0].number, 1.0);
  EXPECT_DOUBLE_EQ(hist->find("bucket_counts")->items[1].number, 1.0);
  EXPECT_DOUBLE_EQ(hist->find("bucket_counts")->items[2].number, 1.0);
  EXPECT_DOUBLE_EQ(hist->find("count")->number, 3.0);
  EXPECT_EQ(v.find("notes")->find("d.note")->text, "free \"text\"");

  std::ostringstream csv;
  writeMetricsCsv(csv, snap);
  EXPECT_NE(csv.str().find("kind,name,key,value"), std::string::npos);
  EXPECT_NE(csv.str().find("counter,\"a.count\",value,42"),
            std::string::npos);

  EXPECT_FALSE(metricsSummary(snap).empty());
}

}  // namespace
}  // namespace polyast::obs

namespace polyast::flow {
namespace {

std::map<std::string, std::int64_t> oddParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 3 : 7;
  return params;
}

/// Deliberately breaks semantics by making every statement dead.
class BreakPass final : public Pass {
 public:
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext&) override {
    for (const auto& stmt : program.statements())
      stmt->guards.push_back(ir::AffExpr(-1));
    return {};
  }

 private:
  inline static const std::string name_ = "break-semantics";
};

/// Breaks semantics the other way: revives statements BreakPass killed.
/// Relative to a reference rebased onto BreakPass's output this is a
/// second, independent break.
class UnbreakPass final : public Pass {
 public:
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext&) override {
    for (const auto& stmt : program.statements()) stmt->guards.clear();
    return {};
  }

 private:
  inline static const std::string name_ = "unbreak-semantics";
};

TEST(PipelineObs, OneSpanPerExecutedPass) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.setEnabled(true);
  ir::Program p = kernels::buildKernel("gemm");
  PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  makePipeline("polyast").run(p, ctx);
  tracer.setEnabled(false);
  auto spans = tracer.spans();
  tracer.clear();

  std::size_t passSpans = 0;
  const obs::SpanRecord* pipelineSpan = nullptr;
  for (const auto& s : spans) {
    if (s.category == "pass") ++passSpans;
    if (s.name == "pipeline:polyast") pipelineSpan = &s;
  }
  ASSERT_TRUE(pipelineSpan != nullptr);
  EXPECT_EQ(passSpans, ctx.report.passes.size());
  // Every pass span is a child of the pipeline span.
  for (const auto& s : spans)
    if (s.category == "pass") EXPECT_EQ(s.parentId, pipelineSpan->id);
}

TEST(PipelineObs, FlowReportIsAViewOverTheRegistry) {
  ir::Program p = kernels::buildKernel("gemm");
  PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  makePipeline("polyast").run(p, ctx);
  auto m = local.snapshot();
  // Per-pass run counters: one per executed pass.
  for (const auto& rec : ctx.report.passes)
    EXPECT_EQ(m.counter("flow." + rec.pass + ".runs"), 1) << rec.pass;
  // Stage counters reach the registry under the flow. prefix with the
  // same totals the report sums.
  for (const char* c : {"doall", "skews", "bands_tiled"})
    EXPECT_EQ(m.counter(std::string("flow.") + c),
              ctx.report.counter(c))
        << c;
  EXPECT_GT(m.gauges.at("flow.total_millis"), 0.0);
  // Nothing leaked into the global registry's flow.<pass>.runs for this
  // isolated run: the pipeline wrote only through ctx.metrics.
}

TEST(PipelineObs, ContinueAfterFailureRecordsEveryBreak) {
  ir::Program p = kernels::buildKernel("gemm");
  PassPipeline pipe("doubly-broken");
  pipe.add(std::make_shared<BreakPass>())
      .add(std::make_shared<UnbreakPass>());
  PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  ctx.verify.enabled = true;
  ctx.verify.continueAfterFailure = true;
  auto params = oddParams(p);
  ctx.verify.makeContext = [params](const ir::Program& q) {
    return kernels::makeContext(q, params);
  };
  EXPECT_NO_THROW(pipe.run(p, ctx));
  ASSERT_EQ(ctx.report.passes.size(), 2u);
  EXPECT_TRUE(ctx.report.passes[0].semanticsBroken);
  // The reference was rebased onto the first break, so the second pass is
  // charged with its own (reverting) change — not exonerated by undoing
  // the first one.
  EXPECT_TRUE(ctx.report.passes[1].semanticsBroken);
  EXPECT_EQ(ctx.report.brokenPasses(), 2);
  EXPECT_EQ(local.snapshot().counter("flow.verify.breaks"), 2);
  EXPECT_NE(ctx.report.summary().find("BROKE SEMANTICS"), std::string::npos);
}

}  // namespace
}  // namespace polyast::flow

namespace polyast::exec {
namespace {

std::map<std::string, std::int64_t> oddParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 3 : 7;
  return params;
}

void expectParallelMatchesSequential(const std::string& kernel,
                                     ParallelRunReport* repOut = nullptr) {
  ir::Program p = kernels::buildKernel(kernel);
  flow::PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  ir::Program q = flow::makePipeline("polyast").run(p, ctx);
  auto params = oddParams(q);
  Context seq = kernels::makeContext(q, params);
  Context par = kernels::makeContext(q, params);
  run(q, seq);
  runtime::ThreadPool pool(3);
  ParallelRunReport rep = runParallel(q, par, pool);
  EXPECT_DOUBLE_EQ(par.maxAbsDiff(seq), 0.0) << kernel;
  if (repOut) *repOut = rep;
}

TEST(ParExec, DoallKernelRunsInParallelAndMatches) {
  ParallelRunReport rep;
  expectParallelMatchesSequential("gemm", &rep);
  EXPECT_GE(rep.doallLoops, 1);
  EXPECT_FALSE(rep.summary().empty());
}

TEST(ParExec, PipelineKernelMatches) {
  // seidel-2d carries loop dependences: the flow marks pipelines, and the
  // harness either maps them onto pipeline2D or falls back sequentially —
  // both must match the sequential interpretation exactly.
  ParallelRunReport rep;
  expectParallelMatchesSequential("seidel-2d", &rep);
  EXPECT_GE(rep.pipelineLoops + rep.sequentialFallbacks, 1);
}

TEST(ParExec, EmitsRuntimeSpansWhenTraced) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.setEnabled(true);
  ParallelRunReport rep;
  expectParallelMatchesSequential("gemm", &rep);
  tracer.setEnabled(false);
  auto spans = tracer.spans();
  tracer.clear();
  std::size_t chunks = 0;
  bool sawHarness = false;
  for (const auto& s : spans) {
    if (s.name == "doall.chunk") ++chunks;
    if (s.name == "exec.parallel") sawHarness = true;
  }
  EXPECT_TRUE(sawHarness);
  EXPECT_GE(chunks, 1u);
}

TEST(ParExec, EveryKernelMatchesSequentialWithNoFallbacks) {
  // Full executor coverage: across the whole PolyBench table and both the
  // tiled and untiled flows, every parallelism mark must reach a runtime
  // construct (zero sequential fallbacks) and the parallel buffers must
  // match the sequential interpretation — bit-for-bit for doall/pipeline
  // execution (statement instances are merely reordered), and within
  // reassociation tolerance when reduction accumulators were privatized.
  for (const auto& info : kernels::allKernels()) {
    for (const char* preset : {"polyast", "polyast-notile"}) {
      ir::Program p = kernels::buildKernel(info.name);
      flow::PassContext ctx;
      obs::Registry local;
      ctx.metrics = &local;
      ir::Program q = flow::makePipeline(preset).run(p, ctx);
      auto params = oddParams(q);
      Context seq = kernels::makeContext(q, params);
      Context par = kernels::makeContext(q, params);
      run(q, seq);
      runtime::ThreadPool pool(3);
      ParallelRunReport rep = runParallel(q, par, pool);
      EXPECT_EQ(rep.sequentialFallbacks, 0)
          << info.name << " / " << preset << "\n"
          << rep.summary();
      const bool reassociates =
          rep.reductionLoops + rep.reductionPipelineLoops > 0;
      const double diff = par.maxAbsDiff(seq);
      if (reassociates)
        EXPECT_LE(diff, 1e-9) << info.name << " / " << preset;
      else
        EXPECT_DOUBLE_EQ(diff, 0.0) << info.name << " / " << preset;
    }
  }
}

TEST(ParExec, ReductionKernelPrivatizesAndMatches) {
  // mvt's fused form reduces into x1 and x2: the executor must map the
  // marks onto parallelReduce (not fall back) and merge per-thread
  // accumulators into the shared targets.
  ir::Program p = kernels::buildKernel("mvt");
  flow::PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  ir::Program q = flow::makePipeline("polyast").run(p, ctx);
  auto params = oddParams(q);
  Context seq = kernels::makeContext(q, params);
  Context par = kernels::makeContext(q, params);
  run(q, seq);
  runtime::ThreadPool pool(3);
  ParallelRunReport rep = runParallel(q, par, pool);
  EXPECT_GE(rep.reductionLoops, 1);
  EXPECT_EQ(rep.sequentialFallbacks, 0) << rep.summary();
  EXPECT_LE(par.maxAbsDiff(seq), 1e-9);
}

TEST(ParExec, TimeTiledStencilUsesPipeline3D) {
  // seidel-2d's time-tiled nest is a rectangular 3-deep tile chain whose
  // mark claims sync depth 3: the executor must use the 3D doacross grid.
  ir::Program p = kernels::buildKernel("seidel-2d");
  flow::PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  ir::Program q = flow::makePipeline("polyast").run(p, ctx);
  auto params = oddParams(q);
  Context seq = kernels::makeContext(q, params);
  Context par = kernels::makeContext(q, params);
  run(q, seq);
  runtime::ThreadPool pool(3);
  ParallelRunReport rep = runParallel(q, par, pool);
  EXPECT_GE(rep.pipeline3dLoops, 1) << rep.summary();
  EXPECT_EQ(rep.sequentialFallbacks, 0);
  EXPECT_DOUBLE_EQ(par.maxAbsDiff(seq), 0.0);
}

TEST(ParExec, SkewedStencilUsesDynamicPipeline) {
  // Untiled jacobi-1d-imper is a skewed (non-rectangular) pipeline with a
  // non-unit inner step whose rows share one stride lattice: the dynamic
  // 2D doacross must apply instead of a sequential fallback.
  ir::Program p = kernels::buildKernel("jacobi-1d-imper");
  flow::PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  ir::Program q = flow::makePipeline("polyast-notile").run(p, ctx);
  auto params = oddParams(q);
  Context seq = kernels::makeContext(q, params);
  Context par = kernels::makeContext(q, params);
  run(q, seq);
  runtime::ThreadPool pool(3);
  ParallelRunReport rep = runParallel(q, par, pool);
  EXPECT_GE(rep.pipelineDynamicLoops, 1) << rep.summary();
  EXPECT_EQ(rep.sequentialFallbacks, 0);
  EXPECT_DOUBLE_EQ(par.maxAbsDiff(seq), 0.0);
}

TEST(ParExec, GuidedScheduleSelectedForImbalancedDoall) {
  // symm's triangular doall loops reference the marked iterator in inner
  // bounds; the executor must pick the guided schedule for them.
  ir::Program p = kernels::buildKernel("symm");
  flow::PassContext ctx;
  obs::Registry local;
  ctx.metrics = &local;
  ir::Program q = flow::makePipeline("polyast").run(p, ctx);
  auto params = oddParams(q);
  Context seq = kernels::makeContext(q, params);
  Context par = kernels::makeContext(q, params);
  run(q, seq);
  runtime::ThreadPool pool(3);
  ParallelRunReport rep = runParallel(q, par, pool);
  EXPECT_GE(rep.guidedLoops, 1) << rep.summary();
  EXPECT_EQ(rep.sequentialFallbacks, 0);
  EXPECT_LE(par.maxAbsDiff(seq), 1e-9);
}

TEST(ParExec, RunSubtreeExecutesWithBindings) {
  // i-loop body executed directly for i = 2 must touch exactly row 2.
  ir::Program p = kernels::buildKernel("gemm");
  auto params = oddParams(p);
  Context full = kernels::makeContext(p, params);
  Context partial = kernels::makeContext(p, params);
  run(p, full);
  ASSERT_EQ(p.root->children.size(), 1u);
  ASSERT_EQ(p.root->children[0]->kind, ir::Node::Kind::Loop);
  auto loop = std::static_pointer_cast<ir::Loop>(p.root->children[0]);
  runSubtree(p, partial, loop->body, {{loop->iter, 2}});
  Context pristine = kernels::makeContext(p, params);
  const auto& cBefore = pristine.buffer("C");
  const auto& cFull = full.buffer("C");
  const auto& cPart = partial.buffer("C");
  std::int64_t n = partial.dims("C")[1];
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_DOUBLE_EQ(cPart[2 * n + j], cFull[2 * n + j]) << j;
  }
  // Other rows untouched (still the seeded values).
  for (std::int64_t j = 0; j < n; ++j)
    EXPECT_DOUBLE_EQ(cPart[0 * n + j], cBefore[0 * n + j]) << j;
}

}  // namespace
}  // namespace polyast::exec
