#include "ir/cemit.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exec/interp.hpp"
#include "kernels/polybench.hpp"
#include "transform/flow.hpp"

namespace polyast::ir {
namespace {

TEST(CEmit, GemmContainsExpectedPieces) {
  Program p = kernels::buildKernel("gemm");
  std::string src = emitC(p);
  EXPECT_NE(src.find("#define NI"), std::string::npos);
  EXPECT_NE(src.find("static double *C;"), std::string::npos);
  EXPECT_NE(src.find("polyast_seed(C, \"C\""), std::string::npos);
  EXPECT_NE(src.find("for (int64_t i = (0); i < (NI); i += 1)"),
            std::string::npos)
      << src;
  // Linearized access.
  EXPECT_NE(src.find("A[((i)) * (NK) + (k)]"), std::string::npos) << src;
}

TEST(CEmit, DoallGetsOpenmpPragma) {
  Program p = kernels::buildKernel("gemm");
  transform::FlowOptions o;
  o.enableRegisterTiling = false;
  Program q = transform::optimize(p, o);
  std::string src = emitC(q);
  EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos) << src;
  CEmitOptions noOmp;
  noOmp.openmp = false;
  std::string src2 = emitC(q, noOmp);
  EXPECT_EQ(src2.find("#pragma omp"), std::string::npos);
  EXPECT_NE(src2.find("/* polyast: doall */"), std::string::npos);
}

TEST(CEmit, PipelineMarkedAsComment) {
  Program p = kernels::buildKernel("seidel-2d");
  transform::FlowOptions o;
  o.enableTiling = false;
  o.enableRegisterTiling = false;
  Program q = transform::optimize(p, o);
  std::string src = emitC(q);
  // The mark comment carries the sync-chain depth the detector proved, so
  // a downstream pass knows which doacross construct the loop needs.
  EXPECT_NE(src.find("/* polyast: pipeline depth=3 */"), std::string::npos)
      << src;
}

TEST(CEmit, GuardsBecomeIfs) {
  Program p = kernels::buildKernel("gemm");
  transform::FlowOptions o;
  o.ast.unrollInner = 2;
  Program q = transform::optimize(p, o);
  std::string src = emitC(q);
  EXPECT_NE(src.find("if ("), std::string::npos) << src;
}

/// End-to-end: emit C, compile it with the system compiler, run it, and
/// compare the checksum against the interpreter on identical seeds — for
/// both the original and the fully optimized program.
class CompileAndRun : public ::testing::TestWithParam<std::string> {};

namespace {

double interpreterChecksum(const Program& p) {
  exec::Context ctx(p);  // default (small) parameters, no prepare hooks —
  ctx.seedAll();         // mirrors the emitted main() exactly
  exec::run(p, ctx);
  double total = 0.0;
  for (const auto& a : p.arrays) {
    const auto& buf = ctx.buffer(a.name);
    double s = 0.0, w = 1.0;
    for (double x : buf) {
      s += w * x;
      w = (w >= 4.0) ? 1.0 : w + 1e-4;
    }
    total += s;
  }
  return total;
}

/// Compiles `src`, runs it, returns the reported total checksum (or
/// nullopt if no C compiler is available).
std::optional<double> compileRunChecksum(const std::string& src,
                                         const std::string& tag) {
  std::string base = "/tmp/polyast_cemit_" + tag;
  {
    std::ofstream f(base + ".c");
    f << src;
  }
  std::string compile = "cc -O2 -w -o " + base + " " + base + ".c -lm 2>/dev/null";
  if (std::system(compile.c_str()) != 0) return std::nullopt;
  std::string run = base + " > " + base + ".out";
  if (std::system(run.c_str()) != 0) return std::nullopt;
  std::ifstream out(base + ".out");
  std::string line;
  while (std::getline(out, line)) {
    if (line.rfind("total: ", 0) == 0)
      return std::stod(line.substr(7));
  }
  return std::nullopt;
}

}  // namespace

TEST_P(CompileAndRun, ChecksumMatchesInterpreter) {
  if (std::system("command -v cc > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no C compiler on PATH";
  Program p = kernels::buildKernel(GetParam());
  double want = interpreterChecksum(p);

  // Original program.
  CEmitOptions opt;
  opt.openmp = false;
  auto got = compileRunChecksum(emitC(p, opt), GetParam() + "_orig");
  ASSERT_TRUE(got.has_value()) << "compilation failed";
  EXPECT_NEAR(*got, want, 1e-6 * (std::abs(want) + 1.0));

  // Fully optimized program (same semantics, same seeds).
  transform::FlowOptions fo;
  fo.ast.tileSize = 5;
  fo.ast.timeTileSize = 2;
  Program q = transform::optimize(p, fo);
  auto got2 = compileRunChecksum(emitC(q, opt), GetParam() + "_opt");
  ASSERT_TRUE(got2.has_value()) << "compilation of optimized code failed";
  EXPECT_NEAR(*got2, want, 1e-6 * (std::abs(want) + 1.0));
}

// cholesky and adi are excluded: with unconditioned random inputs (the
// emitted main seeds without the SPD / damping prepare hooks) they produce
// NaN on both sides, which EXPECT_NEAR cannot compare.
INSTANTIATE_TEST_SUITE_P(Kernels, CompileAndRun,
                         ::testing::Values("gemm", "2mm", "3mm", "atax",
                                           "mvt", "jacobi-1d-imper",
                                           "jacobi-2d-imper", "seidel-2d",
                                           "gesummv", "trisolv", "doitgen",
                                           "bicg", "syrk", "syr2k", "symm",
                                           "gemver", "covariance",
                                           "correlation", "fdtd-2d",
                                           "fdtd-apml"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace polyast::ir
