#include "transform/flow.hpp"

#include <gtest/gtest.h>

#include "baseline/pluto.hpp"
#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "test_util.hpp"

namespace polyast::transform {
namespace {

using ir::ParallelKind;
using testutil::expectSameSemantics;

std::map<std::string, std::int64_t> oddParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 3 : 7;
  return params;
}

FlowOptions testFlowOptions() {
  FlowOptions o;
  o.ast.tileSize = 3;
  o.ast.timeTileSize = 2;
  o.ast.unrollInner = 2;
  o.ast.unrollOuter = 2;
  return o;
}

/// Algorithm 1 end-to-end on the whole suite: legal, executable,
/// semantics-preserving.
class FlowOnAllKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(FlowOnAllKernels, SemanticsPreserved) {
  ir::Program p = kernels::buildKernel(GetParam());
  FlowReport report;
  ir::Program q = optimize(p, testFlowOptions(), &report);
  EXPECT_TRUE(report.affineStageSucceeded) << GetParam();
  expectSameSemantics(p, q, oddParams(p));
}

INSTANTIATE_TEST_SUITE_P(PolyBench, FlowOnAllKernels, ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& k : kernels::allKernels())
                             names.push_back(k.name);
                           return names;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

/// The Pluto-like baseline on the whole suite.
class PlutoOnAllKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(PlutoOnAllKernels, SemanticsPreserved) {
  ir::Program p = kernels::buildKernel(GetParam());
  baseline::PlutoOptions opt;
  opt.ast.tileSize = 3;
  opt.ast.timeTileSize = 2;
  opt.ast.unrollInner = 2;
  opt.ast.unrollOuter = 2;
  ir::Program q = baseline::plutoOptimize(p, opt);
  expectSameSemantics(p, q, oddParams(p));
}

INSTANTIATE_TEST_SUITE_P(PolyBench, PlutoOnAllKernels, ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& k : kernels::allKernels())
                             names.push_back(k.name);
                           return names;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Flow, StencilGetsPipelineMark) {
  ir::Program p = kernels::buildKernel("jacobi-2d-imper");
  FlowOptions o = testFlowOptions();
  o.enableRegisterTiling = false;
  ir::Program q = optimize(p, o);
  bool sawPipeline = false;
  std::function<void(const ir::NodePtr&)> walk = [&](const ir::NodePtr& n) {
    if (n->kind == ir::Node::Kind::Loop) {
      auto l = std::static_pointer_cast<ir::Loop>(n);
      if (l->parallel == ParallelKind::Pipeline ||
          l->parallel == ParallelKind::ReductionPipeline)
        sawPipeline = true;
      walk(l->body);
    } else if (n->kind == ir::Node::Kind::Block) {
      for (const auto& c : std::static_pointer_cast<ir::Block>(n)->children)
        walk(c);
    }
  };
  walk(q.root);
  EXPECT_TRUE(sawPipeline) << ir::printProgram(q);
}

TEST(Flow, GemmGetsDoallMark) {
  ir::Program p = kernels::buildKernel("gemm");
  ir::Program q = optimize(p, testFlowOptions());
  bool sawDoall = false;
  std::function<void(const ir::NodePtr&)> walk = [&](const ir::NodePtr& n) {
    if (n->kind == ir::Node::Kind::Loop) {
      auto l = std::static_pointer_cast<ir::Loop>(n);
      if (l->parallel == ParallelKind::Doall) sawDoall = true;
      walk(l->body);
    } else if (n->kind == ir::Node::Kind::Block) {
      for (const auto& c : std::static_pointer_cast<ir::Block>(n)->children)
        walk(c);
    }
  };
  walk(q.root);
  EXPECT_TRUE(sawDoall) << ir::printProgram(q);
}

TEST(Pluto, WavefrontAppearsForStencils) {
  ir::Program p = kernels::buildKernel("seidel-2d");
  baseline::PlutoOptions opt;
  opt.ast.tileSize = 3;
  opt.ast.timeTileSize = 2;
  opt.registerTiling = false;
  baseline::PlutoReport report;
  ir::Program q = baseline::plutoOptimize(p, opt, &report);
  EXPECT_GE(report.wavefronts, 1) << ir::printProgram(q);
  expectSameSemantics(p, q, {{"TSTEPS", 2}, {"N", 9}});
}

TEST(Pluto, MaxFuseProduces2mmFigure2Shape) {
  // Maximal fusion merges the two matrix products of 2mm into one nest
  // (the paper's Fig. 2 behaviour) when legal; at minimum it must not be
  // *more* distributed than the DL flow.
  ir::Program p = kernels::buildKernel("2mm");
  baseline::PlutoOptions opt;
  opt.fuse = baseline::PlutoOptions::Fuse::Max;
  opt.registerTiling = false;
  opt.ast.tileSize = 3;
  ir::Program q = baseline::plutoOptimize(p, opt);
  expectSameSemantics(p, q, {{"NI", 6}, {"NJ", 6}, {"NK", 6}, {"NL", 6}});
}

TEST(Pluto, VectVariantPermutesIntraTile) {
  // Column-major copy: B[j][i] = 2*A[j][i]. The original (i, j) order has
  // stride-N innermost accesses; pocc_vect must rotate i innermost within
  // the tile.
  ir::ProgramBuilder b("coltouch");
  b.param("N", 64);
  b.array("A", {b.p("N"), b.p("N")});
  b.array("B", {b.p("N"), b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.beginLoop("j", 0, b.p("N"));
  b.stmt("S", "B", {ir::AffExpr::term("j"), ir::AffExpr::term("i")},
         ir::AssignOp::Set,
         ir::floatLit(2.0) * ir::arrayRef("A", {ir::AffExpr::term("j"),
                                                ir::AffExpr::term("i")}));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  baseline::PlutoOptions opt;
  opt.ast.tileSize = 4;
  opt.vectorizeIntraTile = true;
  opt.registerTiling = false;
  baseline::PlutoReport report;
  ir::Program q = baseline::plutoOptimize(p, opt, &report);
  expectSameSemantics(p, q, {{"N", 9}});
  EXPECT_GE(report.intraTilePermutations, 1) << ir::printProgram(q);
}

TEST(Flow, AblationTogglesWork) {
  ir::Program p = kernels::buildKernel("gemm");
  FlowOptions o = testFlowOptions();
  o.enableTiling = false;
  o.enableRegisterTiling = false;
  FlowReport r;
  ir::Program q = optimize(p, o, &r);
  EXPECT_EQ(r.bandsTiled, 0);
  EXPECT_EQ(r.loopsUnrolled, 0);
  expectSameSemantics(p, q, oddParams(p));
}

}  // namespace
}  // namespace polyast::transform
