// Tests for the hardware-counter layer (obs/perf.hpp), the DL-validation
// artifact (obs/dlcheck.hpp), the benchmark history / regression gate
// (obs/bench_history.hpp), and the stable-number-rendering guarantees
// (formatJsonNumber, waitLatencyBounds).
//
// Hardware counters are environment-dependent, so every PerfSession test
// either forces degraded mode (the deterministic path CI exercises via
// POLYAST_PERF=off) or asserts invariants that hold on both paths: a
// session must never crash and must always deliver wall time.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/bench_history.hpp"
#include "obs/dlcheck.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::obs {
namespace {

void burn() {
  volatile double x = 0.0;
  for (int i = 0; i < 200000; ++i) x += static_cast<double>(i) * 1e-9;
}

// --------------------------------------------------------------------------
// PerfSession / PerfReading

TEST(PerfSession, ForcedDegradedStillMeasuresWallTime) {
  PerfOptions opts;
  opts.forceDegraded = true;
  PerfSession session(opts);
  EXPECT_TRUE(session.degraded());
  EXPECT_EQ(session.degradedReason(), "forced");
  EXPECT_TRUE(session.activeCounters().empty());

  session.start();
  burn();
  PerfReading r = session.stop();
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.degradedReason, "forced");
  EXPECT_TRUE(r.counters.empty());
  EXPECT_GT(r.wallNs, 0u);
  EXPECT_EQ(r.counter("cycles"), -1);  // absent counter sentinel
}

TEST(PerfSession, DefaultSessionNeverCrashes) {
  // Real counters when the machine has a PMU, a named degraded reason
  // when it does not — never an exception, and always wall time.
  PerfSession session;
  session.start();
  burn();
  PerfReading r = session.stop();
  EXPECT_GT(r.wallNs, 0u);
  if (r.degraded) {
    EXPECT_FALSE(r.degradedReason.empty());
    EXPECT_TRUE(r.counters.empty());
  } else {
    EXPECT_FALSE(r.counters.empty());
    EXPECT_GE(r.counter("cycles"), 0);
    EXPECT_GT(r.multiplexRatio, 0.0);
  }
}

TEST(PerfSession, RestartableAcrossStartStopCycles) {
  PerfOptions opts;
  opts.forceDegraded = true;
  PerfSession session(opts);
  session.start();
  PerfReading first = session.stop();
  session.start();
  burn();
  PerfReading second = session.stop();
  EXPECT_GT(second.wallNs, 0u);
  EXPECT_GE(first.wallNs, 0u);
}

TEST(PerfReading, AccumulateSumsAndKeepsWorstMultiplex) {
  PerfReading a;
  a.degraded = false;
  a.counters["cycles"] = 100;
  a.counters["l1d_misses"] = 7;
  a.wallNs = 10;
  a.tscCycles = 5;
  a.multiplexRatio = 1.0;

  PerfReading b;
  b.degraded = false;
  b.counters["cycles"] = 50;
  b.wallNs = 7;
  b.multiplexRatio = 0.5;

  a += b;
  EXPECT_FALSE(a.degraded);
  EXPECT_EQ(a.counter("cycles"), 150);
  EXPECT_EQ(a.counter("l1d_misses"), 7);
  EXPECT_EQ(a.wallNs, 17u);
  EXPECT_EQ(a.tscCycles, 5u);
  EXPECT_DOUBLE_EQ(a.multiplexRatio, 0.5);  // worst of any contribution
}

TEST(PerfReading, DegradedOnlyWhenEveryContributionDegraded) {
  PerfReading total;  // default-constructed: degraded, empty
  PerfReading degradedPart;
  degradedPart.degraded = true;
  degradedPart.degradedReason = "forced";
  degradedPart.wallNs = 3;
  total += degradedPart;
  EXPECT_TRUE(total.degraded);
  EXPECT_EQ(total.degradedReason, "forced");

  PerfReading livePart;
  livePart.degraded = false;
  livePart.counters["cycles"] = 9;
  total += livePart;
  EXPECT_FALSE(total.degraded);  // one live thread makes the total live
  EXPECT_EQ(total.counter("cycles"), 9);
}

TEST(PerfSession, SampleReadsCumulativelyWithoutStopping) {
  PerfOptions opts;
  opts.forceDegraded = true;
  PerfSession session(opts);
  session.start();
  burn();
  PerfReading first = session.sample();
  burn();
  PerfReading second = session.sample();
  PerfReading final = session.stop();
  // Samples are cumulative since start() and monotone non-decreasing;
  // the session keeps running across them.
  EXPECT_GT(first.wallNs, 0u);
  EXPECT_GE(second.wallNs, first.wallNs);
  EXPECT_GE(final.wallNs, second.wallNs);
}

// --------------------------------------------------------------------------
// ConstructProfiler

TEST(ConstructProfiler, RowsPlusResidualTelescopeExactlyToTotal) {
  PerfOptions opts;
  opts.forceDegraded = true;  // deterministic wall-clock-only path
  ConstructProfiler prof(opts);
  prof.install();
  EXPECT_EQ(ConstructProfiler::current(), &prof);
  EXPECT_TRUE(constructHooksActive());

  prof.beginRun("interp");
  constructEnter(0, "doall", "i");
  burn();
  constructExit(0);
  constructEnter(1, "reduction", "j");
  burn();
  constructExit(1);
  constructEnter(0, "doall", "i");  // second dynamic encounter
  constructExit(0);
  prof.endRun();
  prof.uninstall();
  EXPECT_EQ(ConstructProfiler::current(), nullptr);

  EXPECT_EQ(prof.backend(), "interp");
  std::vector<ConstructRow> rows = prof.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].id, 0);
  EXPECT_EQ(rows[0].kind, "doall");
  EXPECT_EQ(rows[0].iter, "i");
  EXPECT_EQ(rows[0].enters, 2);
  EXPECT_EQ(rows[1].id, 1);
  EXPECT_EQ(rows[1].kind, "reduction");
  EXPECT_EQ(rows[1].enters, 1);

  // The telescoping invariant is exact equality, not approximation.
  std::uint64_t sum = prof.residual().wallNs;
  for (const auto& r : rows) sum += r.measured.wallNs;
  EXPECT_EQ(sum, prof.total().wallNs);
  EXPECT_GT(prof.total().wallNs, 0u);
}

TEST(ConstructProfiler, ForcedDegradedCarriesReasonIntoTotal) {
  PerfOptions opts;
  opts.forceDegraded = true;
  ConstructProfiler prof(opts);
  prof.beginRun("native");
  constructEnter(0, "doall", "i");
  constructExit(0);
  prof.endRun();
  EXPECT_EQ(prof.backend(), "native");
  EXPECT_TRUE(prof.degraded());
  EXPECT_EQ(prof.degradedReason(), "forced");
}

TEST(ConstructProfiler, HooksAreNoOpsWhenNothingIsInstalled) {
  ASSERT_EQ(ConstructProfiler::current(), nullptr);
  EXPECT_FALSE(constructHooksActive());
  constructEnter(3, "doall", "i");  // must be safe, not crash
  constructExit(3);
}

TEST(ConstructProfiler, HooksEmitConstructSpansWhenTracerEnabled) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.setEnabled(true);
  EXPECT_TRUE(constructHooksActive());  // tracer alone activates hooks
  constructEnter(4, "pipeline", "t");
  constructExit(4);
  tracer.setEnabled(false);

  bool found = false;
  for (const auto& s : tracer.spans())
    if (s.category == "construct" && s.name == "pipeline:t") found = true;
  EXPECT_TRUE(found);
  tracer.clear();
}

// --------------------------------------------------------------------------
// polyast-attrib-v1 writer

TEST(AttribReport, WriterEmitsSchemaValidV1) {
  AttribReport report;
  report.threads = 2;
  AttribKernel k;
  k.kernel = "gemm";
  k.pipeline = "polyast";
  k.backend = "native";
  k.total.degraded = true;
  k.total.degradedReason = "forced";
  k.total.wallNs = 1000;
  k.residual.wallNs = 100;
  for (int i = 0; i < 3; ++i) {
    AttribConstruct c;
    c.id = i;
    c.kind = "doall";
    c.iter = "i";
    c.nest = "i";
    c.enters = 1;
    c.predictedCost = 10.0 * (i + 1);
    c.measured.wallNs = static_cast<std::uint64_t>(200 + 100 * i);
    k.constructs.push_back(std::move(c));
  }
  report.kernels.push_back(std::move(k));

  std::ostringstream out;
  writeAttrib(out, report);
  JsonValue root = parseJson(out.str());

  ASSERT_TRUE(root.isObject());
  EXPECT_EQ(root.find("schema")->text, "polyast-attrib-v1");
  EXPECT_EQ(root.find("threads")->number, 2.0);
  EXPECT_TRUE(root.find("degraded")->boolValue);
  const JsonValue* kernels = root.find("kernels");
  ASSERT_TRUE(kernels && kernels->isArray());
  ASSERT_EQ(kernels->items.size(), 1u);
  const JsonValue& k0 = kernels->items[0];
  EXPECT_EQ(k0.find("backend")->text, "native");
  EXPECT_EQ(k0.find("total")->find("degraded_reason")->text, "forced");

  // Telescoping: residual + construct rows == total, exactly.
  double sum = k0.find("residual")->find("wall_ns")->number;
  for (const auto& c : k0.find("constructs")->items)
    sum += c.find("measured")->find("wall_ns")->number;
  EXPECT_DOUBLE_EQ(sum, k0.find("total")->find("wall_ns")->number);

  const JsonValue* summary = k0.find("summary");
  ASSERT_TRUE(summary);
  EXPECT_EQ(summary->find("construct_count")->number, 3.0);
  const JsonValue* corr = summary->find("rank_correlation");
  ASSERT_TRUE(corr && corr->isObject());
  // Predicted cost and measured wall time are both strictly increasing.
  const JsonValue* cost = corr->find("cost_vs_wall_ns");
  ASSERT_TRUE(cost && cost->isNumber());
  EXPECT_DOUBLE_EQ(cost->number, 1.0);
  // Degraded run: no l1d_misses counter anywhere -> null.
  const JsonValue* l1d = corr->find("lines_vs_l1d_misses");
  ASSERT_TRUE(l1d);
  EXPECT_EQ(l1d->kind, JsonValue::Kind::Null);

  const JsonValue* pooled = root.find("summary");
  ASSERT_TRUE(pooled);
  EXPECT_EQ(pooled->find("kernel_count")->number, 1.0);
  EXPECT_EQ(pooled->find("construct_count")->number, 3.0);
}

// --------------------------------------------------------------------------
// PerfAggregate

TEST(PerfAggregate, CollectsPerThreadReadings) {
  PerfOptions opts;
  opts.forceDegraded = true;  // deterministic on every host
  PerfAggregate agg(opts);

  agg.beginThread();
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t)
    workers.emplace_back([&agg] {
      agg.beginThread();
      burn();
      agg.endThread();
    });
  for (auto& w : workers) w.join();
  burn();
  agg.endThread();

  EXPECT_EQ(agg.threadsMeasured(), 4);
  EXPECT_EQ(agg.threadsDegraded(), 4);
  PerfReading t = agg.totals();
  EXPECT_TRUE(t.degraded);
  EXPECT_GT(t.wallNs, 0u);
}

TEST(PerfAggregate, EndWithoutBeginIsANoOp) {
  PerfAggregate agg;
  agg.endThread();
  EXPECT_EQ(agg.threadsMeasured(), 0);
}

TEST(PerfAggregate, RecordToWritesMetricsAndDegradedNote) {
  PerfOptions opts;
  opts.forceDegraded = true;
  PerfAggregate agg(opts);
  agg.beginThread();
  burn();
  agg.endThread();

  Registry reg;
  agg.recordTo(reg);
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_GT(snap.counter("perf.wall_ns"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("perf.threads"), 1.0);
  ASSERT_TRUE(snap.notes.count("obs.perf.degraded"));
  EXPECT_NE(snap.notes.at("obs.perf.degraded").find("forced"),
            std::string::npos);
}

// --------------------------------------------------------------------------
// Spearman rank correlation

TEST(Spearman, PerfectMonotoneIsOne) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{10, 200, 3000, 40000, 500000};  // any monotone map
  EXPECT_DOUBLE_EQ(spearman(a, b), 1.0);
  std::vector<double> rev{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(spearman(a, rev), -1.0);
}

TEST(Spearman, TiesUseAverageRanks) {
  // {1, 2, 2, 3} vs {1, 2, 2, 3}: still a perfect correlation with the
  // tied pair sharing rank 2.5.
  std::vector<double> a{1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(spearman(a, a), 1.0);
}

TEST(Spearman, UndefinedCasesAreNaN) {
  EXPECT_TRUE(std::isnan(spearman({}, {})));
  EXPECT_TRUE(std::isnan(spearman({1.0}, {2.0})));            // < 2 points
  EXPECT_TRUE(std::isnan(spearman({1, 2}, {1, 2, 3})));       // mismatch
  EXPECT_TRUE(std::isnan(spearman({7, 7, 7}, {1, 2, 3})));    // no variance
}

// --------------------------------------------------------------------------
// dlcheck artifact round-trip

TEST(DlCheck, WriterEmitsSchemaValidV1) {
  DlCheckReport report;
  report.threads = 2;
  for (int i = 0; i < 3; ++i) {
    DlCheckKernel k;
    k.kernel = "k" + std::to_string(i);
    k.pipeline = "polyast";
    k.predictedLines = 10.0 * (i + 1);
    k.predictedCost = 10.0 * (i + 1);
    k.nests = i + 1;
    k.measured.degraded = true;
    k.measured.degradedReason = "forced";
    k.measured.wallNs = static_cast<std::uint64_t>(1000 * (i + 1));
    k.threadsMeasured = 2;
    k.threadsDegraded = 2;
    report.kernels.push_back(std::move(k));
  }

  std::ostringstream out;
  writeDlCheck(out, report);
  JsonValue root = parseJson(out.str());

  ASSERT_TRUE(root.isObject());
  EXPECT_EQ(root.find("schema")->text, "polyast-dlcheck-v1");
  EXPECT_EQ(root.find("threads")->number, 2.0);
  EXPECT_TRUE(root.find("degraded")->boolValue);
  const JsonValue* kernels = root.find("kernels");
  ASSERT_TRUE(kernels && kernels->isArray());
  ASSERT_EQ(kernels->items.size(), 3u);
  const JsonValue& k0 = kernels->items[0];
  EXPECT_EQ(k0.find("kernel")->text, "k0");
  EXPECT_EQ(k0.find("predicted")->find("lines")->number, 10.0);
  const JsonValue* measured = k0.find("measured");
  ASSERT_TRUE(measured);
  EXPECT_TRUE(measured->find("degraded")->boolValue);
  EXPECT_EQ(measured->find("degraded_reason")->text, "forced");
  EXPECT_EQ(measured->find("wall_ns")->number, 1000.0);

  const JsonValue* summary = root.find("summary");
  ASSERT_TRUE(summary);
  EXPECT_EQ(summary->find("kernel_count")->number, 3.0);
  const JsonValue* corr = summary->find("rank_correlation");
  ASSERT_TRUE(corr && corr->isObject());
  // Predicted lines and wall_ns are both strictly increasing here.
  const JsonValue* wall = corr->find("wall_ns");
  ASSERT_TRUE(wall && wall->isNumber());
  EXPECT_DOUBLE_EQ(wall->number, 1.0);
  // Degraded run: hardware-counter correlations are undefined -> null.
  const JsonValue* l1d = corr->find("l1d_misses");
  ASSERT_TRUE(l1d);
  EXPECT_EQ(l1d->kind, JsonValue::Kind::Null);
}

// --------------------------------------------------------------------------
// Benchmark history + regression comparison

BenchEntry makeEntry(const std::string& label, double gemmNs,
                     double mvtNs) {
  BenchEntry e;
  e.label = label;
  e.kernels.push_back({"gemm", gemmNs, {{"cycles", gemmNs * 3.0}}});
  e.kernels.push_back({"mvt", mvtNs, {}});
  return e;
}

TEST(BenchHistory, RoundTripsThroughDisk) {
  const std::string path = "perf_test_bench_history.json";
  BenchHistory h;
  h.host = "test";
  h.entries.push_back(makeEntry("a", 1e6, 5e5));
  h.entries.push_back(makeEntry("b", 1.1e6, 5.1e5));
  saveBenchHistory(path, h);

  BenchHistory back = loadBenchHistory(path, "test");
  std::remove(path.c_str());
  EXPECT_EQ(back.host, "test");
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[1].label, "b");
  const BenchKernelSample* gemm = back.entries[1].find("gemm");
  ASSERT_NE(gemm, nullptr);
  EXPECT_DOUBLE_EQ(gemm->wallNs, 1.1e6);
  EXPECT_DOUBLE_EQ(gemm->counters.at("cycles"), 3.3e6);
  EXPECT_EQ(back.entries[1].find("nope"), nullptr);
}

TEST(BenchHistory, MissingFileIsFirstRun) {
  BenchHistory h = loadBenchHistory("perf_test_no_such_file.json", "test");
  EXPECT_TRUE(h.entries.empty());
  BenchCompareResult r =
      compareAgainstLatest(h, makeEntry("head", 1e6, 5e5), 10.0);
  EXPECT_TRUE(r.firstRun);
  EXPECT_EQ(r.regressions, 0);
}

TEST(BenchHistory, SaveTrimsToMaxEntries) {
  const std::string path = "perf_test_bench_trim.json";
  BenchHistory h;
  h.host = "test";
  for (int i = 0; i < 5; ++i)
    h.entries.push_back(makeEntry("e" + std::to_string(i), 1e6, 5e5));
  saveBenchHistory(path, h, 2);
  BenchHistory back = loadBenchHistory(path, "test");
  std::remove(path.c_str());
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].label, "e3");  // most-recent entries survive
  EXPECT_EQ(back.entries[1].label, "e4");
}

TEST(BenchHistory, MalformedContentsThrow) {
  EXPECT_THROW(parseBenchHistory("{\"schema\":\"wrong\"}"), Error);
  EXPECT_THROW(parseBenchHistory("not json"), Error);
}

TEST(BenchCompare, DetectsInjectedSlowdown) {
  BenchHistory h;
  h.entries.push_back(makeEntry("base", 1e6, 5e5));

  // 2% drift passes a 10% gate.
  BenchCompareResult ok =
      compareAgainstLatest(h, makeEntry("head", 1.02e6, 4.95e5), 10.0);
  EXPECT_FALSE(ok.firstRun);
  EXPECT_EQ(ok.regressions, 0);
  ASSERT_EQ(ok.deltas.size(), 2u);

  // Injected 20% slowdown on gemm fails it, naming the kernel.
  BenchCompareResult bad =
      compareAgainstLatest(h, makeEntry("head", 1.2e6, 5e5), 10.0);
  EXPECT_EQ(bad.regressions, 1);
  bool found = false;
  for (const auto& d : bad.deltas)
    if (d.kernel == "gemm") {
      EXPECT_TRUE(d.regression);
      EXPECT_NEAR(d.deltaPct, 20.0, 0.01);
      found = true;
    }
  EXPECT_TRUE(found);

  // The same head passes a 25% threshold.
  EXPECT_EQ(compareAgainstLatest(h, makeEntry("head", 1.2e6, 5e5), 25.0)
                .regressions,
            0);
}

TEST(BenchCompare, ReportsAddedAndRemovedKernels) {
  BenchHistory h;
  h.entries.push_back(makeEntry("base", 1e6, 5e5));
  BenchEntry head;
  head.label = "head";
  head.kernels.push_back({"gemm", 1e6, {}});
  head.kernels.push_back({"syrk", 2e6, {}});  // new kernel
  BenchCompareResult r = compareAgainstLatest(h, head, 10.0);
  ASSERT_EQ(r.added.size(), 1u);
  EXPECT_EQ(r.added[0], "syrk");
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0], "mvt");
  EXPECT_EQ(r.regressions, 0);  // added/removed never fail the gate
}

TEST(BenchCompare, PerKernelThresholdsOverrideTheGlobalOne) {
  BenchHistory h;
  h.entries.push_back(makeEntry("base", 1e6, 5e5));
  std::map<std::string, double> gates{{"gemm", 25.0}, {"mvt", 5.0}};
  // gemm +20% passes its widened 25% gate; mvt +8% fails its tight 5%
  // one — both judged against their own threshold, not the global 10%.
  BenchCompareResult r =
      compareAgainstLatest(h, makeEntry("head", 1.2e6, 5.4e5), 10.0, &gates);
  EXPECT_EQ(r.regressions, 1);
  for (const auto& d : r.deltas) {
    if (d.kernel == "gemm") {
      EXPECT_FALSE(d.regression);
      EXPECT_DOUBLE_EQ(d.thresholdPct, 25.0);
    }
    if (d.kernel == "mvt") {
      EXPECT_TRUE(d.regression);
      EXPECT_DOUBLE_EQ(d.thresholdPct, 5.0);
    }
  }
}

TEST(BenchHistory, NoiseFloorIsTheWorstSpreadAcrossHistoryAndHead) {
  BenchHistory h;
  BenchEntry a = makeEntry("a", 1e6, 5e5);
  a.kernels[0].counters["wall_spread_pct"] = 4.0;  // gemm's worst
  BenchEntry b = makeEntry("b", 1e6, 5e5);
  b.kernels[0].counters["wall_spread_pct"] = 2.0;
  b.kernels[1].counters["wall_spread_pct"] = 7.0;  // mvt's worst
  h.entries.push_back(std::move(a));
  h.entries.push_back(std::move(b));
  BenchEntry head = makeEntry("head", 1e6, 5e5);
  head.kernels[0].counters["wall_spread_pct"] = 3.0;
  head.kernels.push_back({"syrk", 2e6, {}});  // no spread recorded anywhere

  std::map<std::string, double> floor = characterizeNoiseFloor(h, head);
  EXPECT_DOUBLE_EQ(floor.at("gemm"), 4.0);
  EXPECT_DOUBLE_EQ(floor.at("mvt"), 7.0);
  EXPECT_DOUBLE_EQ(floor.at("syrk"), 0.0);  // the caller's floor clamps it
}

// --------------------------------------------------------------------------
// Stable number rendering (satellite of the dlcheck work: bucket edges and
// counter values must print identically in every exporter).

TEST(FormatJsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(formatJsonNumber(128.0), "128");
  EXPECT_EQ(formatJsonNumber(2097152.0), "2097152");  // not "2.09715e+06"
  EXPECT_EQ(formatJsonNumber(0.5), "0.5");
  EXPECT_EQ(formatJsonNumber(-3.0), "-3");
  EXPECT_EQ(formatJsonNumber(0.0), "0");
  // Round-trip guarantee on a value with no short decimal form.
  std::string s = formatJsonNumber(0.1);
  EXPECT_DOUBLE_EQ(std::stod(s), 0.1);
  EXPECT_EQ(formatJsonNumber(std::nan("")), "null");
}

TEST(WaitLatencyBounds, StableDocumentedEdges) {
  const std::vector<double>& b = waitLatencyBounds();
  ASSERT_EQ(b.size(), 14u);
  EXPECT_DOUBLE_EQ(b.front(), 128.0);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(b[i], b[i - 1] * 4.0);
    // Integer-valued edges: they render exactly in CSV/JSON exports.
    EXPECT_DOUBLE_EQ(b[i], std::floor(b[i]));
  }
}

}  // namespace
}  // namespace polyast::obs
