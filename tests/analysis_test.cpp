// Tests for the static analysis framework (src/analysis): the diagnostic
// engine and its JSON document, provenance (origin) stamping, the three
// analyses on constructed programs, the mutation corpus, and the
// full-suite cross-check that the static verdict and the interpreter
// oracle never disagree on the legal side.
#include "analysis/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/mutations.hpp"
#include "flow/analyze.hpp"
#include "flow/presets.hpp"
#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "obs/json.hpp"
#include "test_util.hpp"

namespace polyast::analysis {
namespace {

ir::AffExpr v(const std::string& name) { return ir::AffExpr::term(name); }

std::map<std::string, std::int64_t> oddParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 3 : 7;
  return params;
}

/// Loop nest enclosing the `stmtIndex`-th statement (textual order).
std::vector<std::shared_ptr<ir::Loop>> loopsOf(const ir::Program& p,
                                               int stmtIndex = 0) {
  std::vector<std::shared_ptr<ir::Loop>> out;
  int seen = 0;
  p.forEachStmt([&](const std::shared_ptr<ir::Stmt>&,
                    const std::vector<std::shared_ptr<ir::Loop>>& loops) {
    if (seen++ == stmtIndex) out = loops;
  });
  return out;
}

bool hasDiagnostic(const DiagnosticEngine& engine, Severity severity,
                   const std::string& analysis, const std::string& code) {
  for (const auto& d : engine.diagnostics())
    if (d.severity == severity && d.analysis == analysis && d.code == code)
      return true;
  return false;
}

// ---------------------------------------------------------------------------
// DiagnosticEngine

TEST(Diagnostics, EngineCountsAndMirrorsMetrics) {
  obs::Registry reg;
  DiagnosticEngine engine(&reg);

  Diagnostic d;
  d.analysis = "legality";
  d.code = "violated-dependence";
  d.severity = Severity::Error;
  engine.report(d);
  d.severity = Severity::Warning;
  engine.report(d);
  d.analysis = "bounds";
  d.code = "dead-iterator";
  d.severity = Severity::Remark;
  engine.report(d);

  EXPECT_EQ(engine.errors(), 1u);
  EXPECT_EQ(engine.warnings(), 1u);
  EXPECT_EQ(engine.remarks(), 1u);
  EXPECT_EQ(engine.diagnostics().size(), 3u);
  EXPECT_EQ(reg.counter("analysis.legality.errors").value(), 1);
  EXPECT_EQ(reg.counter("analysis.legality.warnings").value(), 1);
  EXPECT_EQ(reg.counter("analysis.bounds.remarks").value(), 1);
}

TEST(Diagnostics, JsonDocumentRoundTrips) {
  obs::Registry reg;
  DiagnosticEngine engine(&reg);
  Diagnostic d;
  d.severity = Severity::Error;
  d.analysis = "races";
  d.code = "doall-race";
  d.message = "a \"quoted\" message";
  d.location = "loop:i/stmt:S0";
  d.afterPass = "parallelism";
  d.detail["distance"] = "1";
  engine.report(d);

  std::ostringstream os;
  writeDiagnosticsJson(os, engine, "gemm", "polyast");
  obs::JsonValue doc = obs::parseJson(os.str());

  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("schema")->text, "polyast-diagnostics-v1");
  EXPECT_EQ(doc.find("program")->text, "gemm");
  EXPECT_EQ(doc.find("pipeline")->text, "polyast");
  EXPECT_EQ(doc.find("summary")->find("errors")->number, 1.0);
  ASSERT_EQ(doc.find("diagnostics")->items.size(), 1u);
  const obs::JsonValue& e = doc.find("diagnostics")->items[0];
  EXPECT_EQ(e.find("severity")->text, "error");
  EXPECT_EQ(e.find("analysis")->text, "races");
  EXPECT_EQ(e.find("code")->text, "doall-race");
  EXPECT_EQ(e.find("message")->text, "a \"quoted\" message");
  EXPECT_EQ(e.find("after_pass")->text, "parallelism");
  EXPECT_EQ(e.find("detail")->find("distance")->text, "1");
}

// ---------------------------------------------------------------------------
// Provenance (origin) stamping

TEST(Origin, FirstAnalyzeStampsIdentityMaps) {
  ir::Program p = kernels::buildKernel("gemm");
  AnalysisSession session;
  session.analyze(p, "<input>");
  ASSERT_TRUE(session.hasBaseline());

  p.forEachStmt([](const std::shared_ptr<ir::Stmt>& stmt,
                   const std::vector<std::shared_ptr<ir::Loop>>& loops) {
    ASSERT_EQ(stmt->origin.size(), loops.size());
    for (std::size_t k = 0; k < loops.size(); ++k)
      EXPECT_EQ(stmt->origin[k], ir::AffExpr::term(loops[k]->iter));
  });
}

TEST(Origin, RenameIterInTreeSurvivesAliasedFromArgument) {
  // Regression: renameIterInTree used to take `from` by reference, and
  // callers pass `loop->iter` — which the walk itself reassigns, so the
  // name being matched changed mid-walk and inner references were left
  // unrenamed.
  ir::Program p = kernels::buildKernel("gemm");
  AnalysisSession session;
  session.analyze(p, "<input>");

  auto loops = loopsOf(p, 0);
  ASSERT_FALSE(loops.empty());
  ir::renameIterInTree(loops[0], loops[0]->iter, "z0");  // aliased `from`
  EXPECT_EQ(loops[0]->iter, "z0");
  std::string text = ir::printProgram(p);
  // Every reference under the renamed loop follows; the old name is gone
  // from that nest (gemm's first nest is the C-init double loop over i,j).
  EXPECT_NE(text.find("z0"), std::string::npos);

  // The origin maps still express original iterators of this statement in
  // terms of the live ones: re-analysis reports no origin mismatch.
  session.analyze(p, "rename");
  EXPECT_FALSE(hasDiagnostic(session.engine(), Severity::Error, "legality",
                             "origin-mismatch"));
}

// ---------------------------------------------------------------------------
// Races on constructed programs

ir::Program carriedDependenceLoop() {
  ir::ProgramBuilder b("carried");
  b.param("N", 16);
  b.array("A", {v("N")});
  b.array("B", {v("N")});
  b.beginLoop("i", 1, v("N"));
  b.stmt("S", "A", {v("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {v("i") - ir::AffExpr(1)}) +
             ir::arrayRef("B", {v("i")}));
  b.endLoop();
  return b.build();
}

TEST(Races, DoallOnCarriedDependenceIsAnError) {
  ir::Program p = carriedDependenceLoop();
  loopsOf(p)[0]->parallel = ir::ParallelKind::Doall;
  AnalysisSession session;
  session.analyze(p, "<input>");
  EXPECT_TRUE(hasDiagnostic(session.engine(), Severity::Error, "races",
                            "doall-race"))
      << session.engine().summary();
}

TEST(Races, DoallOnIndependentLoopIsClean) {
  ir::ProgramBuilder b("independent");
  b.param("N", 16);
  b.array("A", {v("N")});
  b.array("B", {v("N")});
  b.beginLoop("i", 0, v("N"));
  b.stmt("S", "A", {v("i")}, ir::AssignOp::Set, ir::arrayRef("B", {v("i")}));
  b.endLoop();
  ir::Program p = b.build();
  loopsOf(p)[0]->parallel = ir::ParallelKind::Doall;

  AnalysisSession session;
  session.analyze(p, "<input>");
  EXPECT_EQ(session.engine().errors(), 0u) << session.engine().summary();
  EXPECT_EQ(session.engine().warnings(), 0u) << session.engine().summary();
}

TEST(Races, ReductionMarkCoversAccumulatorUpdate) {
  // S[j] += X[i][j] carried over i: illegal as Doall, legal as Reduction.
  ir::ProgramBuilder b("colsum");
  b.param("N", 16);
  b.array("S", {v("N")});
  b.array("X", {v("N"), v("N")});
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("N"));
  b.stmt("R", "S", {v("j")}, ir::AssignOp::AddAssign,
         ir::arrayRef("X", {v("i"), v("j")}));
  b.endLoop();
  b.endLoop();

  {
    ir::Program p = b.build();
    loopsOf(p)[0]->parallel = ir::ParallelKind::Reduction;
    AnalysisSession session;
    session.analyze(p, "<input>");
    EXPECT_EQ(session.engine().errors(), 0u) << session.engine().summary();
  }
}

// ---------------------------------------------------------------------------
// Bounds on constructed programs

TEST(Bounds, OverflowGetsErrorWithIntegerWitness) {
  ir::ProgramBuilder b("overflow");
  b.param("N", 16);
  b.array("A", {v("N")});
  b.array("B", {v("N")});
  b.beginLoop("i", 0, v("N"));
  b.stmt("S", "B", {v("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {v("i") + ir::AffExpr(1)}));  // A[N] at i=N-1
  b.endLoop();
  ir::Program p = b.build();

  AnalysisSession session;
  session.analyze(p, "<input>");
  ASSERT_TRUE(hasDiagnostic(session.engine(), Severity::Error, "bounds",
                            "out-of-bounds"))
      << session.engine().summary();
  bool sawWitness = false;
  for (const auto& d : session.engine().diagnostics())
    if (d.code == "out-of-bounds" && d.detail.count("witness"))
      sawWitness = true;
  EXPECT_TRUE(sawWitness);
}

TEST(Bounds, DeadIteratorIsARemarkButTimeLoopIsNot) {
  // k is never used and its body reads/writes disjoint arrays: dead.
  ir::ProgramBuilder b("dead");
  b.param("N", 16);
  b.array("A", {v("N")});
  b.array("B", {v("N")});
  b.beginLoop("k", 0, v("N"));
  b.beginLoop("i", 0, v("N"));
  b.stmt("S", "A", {v("i")}, ir::AssignOp::Set, ir::arrayRef("B", {v("i")}));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  AnalysisSession session;
  session.analyze(p, "<input>");
  EXPECT_TRUE(hasDiagnostic(session.engine(), Severity::Remark, "bounds",
                            "dead-iterator"))
      << session.engine().summary();

  // Same shape but the body updates A in place: the repetition is
  // observable (a time loop), so no dead-iterator remark.
  ir::ProgramBuilder b2("time");
  b2.param("N", 16);
  b2.array("A", {v("N")});
  b2.beginLoop("t", 0, v("N"));
  b2.beginLoop("i", 1, v("N"));
  b2.stmt("S", "A", {v("i")}, ir::AssignOp::Set,
          ir::arrayRef("A", {v("i") - ir::AffExpr(1)}));
  b2.endLoop();
  b2.endLoop();
  ir::Program q = b2.build();
  AnalysisSession session2;
  session2.analyze(q, "<input>");
  EXPECT_FALSE(hasDiagnostic(session2.engine(), Severity::Remark, "bounds",
                             "dead-iterator"))
      << session2.engine().summary();
}

// ---------------------------------------------------------------------------
// Session mechanics

TEST(Session, ReanalyzingUnchangedProgramIsSkipped) {
  obs::Registry reg;
  ir::Program p = kernels::buildKernel("gemm");
  AnalysisSession session({}, &reg);
  session.analyze(p, "<input>");
  std::int64_t runsAfterFirst = reg.counter("analysis.runs").value();
  session.analyze(p, "noop-pass");
  EXPECT_EQ(reg.counter("analysis.runs").value(), runsAfterFirst + 1);
  EXPECT_EQ(reg.counter("analysis.skipped_unchanged").value(), 1);
}

TEST(Session, LegalityReusedAcrossIteratorRename) {
  // Renaming an iterator changes the program text (so the full analysis
  // batch re-runs) but not the schedule or domains, so the legality
  // verifier — whose verdict is keyed on a rename-invariant hash — must
  // reuse the previous verdict instead of recomputing.
  obs::Registry reg;
  ir::Program p = kernels::buildKernel("gemm");
  AnalysisSession session({}, &reg);
  session.analyze(p, "<input>");
  EXPECT_EQ(reg.counter("analysis.legality.reused_unchanged").value(), 0);

  auto loops = loopsOf(p, 0);
  ASSERT_FALSE(loops.empty());
  ir::renameIterInTree(loops[0], loops[0]->iter, "w9");
  session.analyze(p, "rename");
  EXPECT_EQ(reg.counter("analysis.legality.reused_unchanged").value(), 1);
  EXPECT_FALSE(hasDiagnostic(session.engine(), Severity::Error, "legality",
                             "origin-mismatch"));

  // A domain change must invalidate the key: adding a redundant min-part to
  // a bound leaves behavior intact but alters the printed domain.
  auto loops2 = loopsOf(p, 0);
  ASSERT_GE(loops2.size(), 1u);
  loops2[0]->upper.parts.push_back(ir::AffExpr(1000000));
  session.analyze(p, "bound-change");
  EXPECT_EQ(reg.counter("analysis.legality.reused_unchanged").value(), 1);
}

// ---------------------------------------------------------------------------
// Mutation corpus: the negative half of the contract

TEST(Mutations, EveryIllegalVariantIsCaughtByTheExpectedAnalysis) {
  auto outcomes = runMutationCorpus(
      [](const std::string& k) { return kernels::buildKernel(k); });
  EXPECT_FALSE(outcomes.empty());
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.cleanBefore)
        << o.mutation->name << ": pristine kernel not clean: " << o.note;
    EXPECT_TRUE(o.caught) << o.mutation->name << ": expected "
                          << o.mutation->expectAnalysis << "/"
                          << o.mutation->expectCode << ", got: " << o.note;
  }
  EXPECT_TRUE(allMutationsCaught(outcomes));
}

// ---------------------------------------------------------------------------
// Cross-check: static analyses vs the interpreter oracle over the suite.
// Both gates run on the same pipeline execution; on these (legal) presets
// they must agree — zero error diagnostics and zero oracle breaks. A
// disagreement in either direction is a bug in the checker or the oracle.

struct CrossCase {
  std::string kernel;
  std::string preset;
};

class StaticVsOracle : public ::testing::TestWithParam<CrossCase> {};

TEST_P(StaticVsOracle, AgreeProgramIsLegal) {
  const auto& param = GetParam();
  ir::Program p = kernels::buildKernel(param.kernel);
  auto params = oddParams(p);

  flow::PipelineOptions options;
  options.ast.tileSize = 3;  // small enough to exercise tiling at N=7
  options.ast.timeTileSize = 2;
  flow::PassPipeline pipe = flow::makePipeline(param.preset, options);

  AnalysisOptions aopt;
  aopt.witnessParams = params;
  auto session = std::make_shared<AnalysisSession>(aopt);
  pipe = flow::withAnalysis(pipe, session);

  flow::PassContext ctx;
  obs::Registry reg;
  ctx.metrics = &reg;
  ctx.verify.enabled = true;
  ctx.verify.continueAfterFailure = true;
  ctx.verify.makeContext = [params](const ir::Program& prog) {
    return kernels::makeContext(prog, params);
  };

  pipe.run(p, ctx);
  EXPECT_EQ(session->engine().errors(), 0u)
      << "static analysis flagged a legal pipeline:\n"
      << session->engine().summary();
  EXPECT_EQ(ctx.report.brokenPasses(), 0)
      << "oracle flagged a break the static analyses missed:\n"
      << ctx.report.summary();
}

std::vector<CrossCase> crossCases() {
  std::vector<CrossCase> cases;
  for (const auto& k : kernels::allKernels())
    for (const char* preset : {"polyast", "pocc"})
      cases.push_back({k.name, preset});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, StaticVsOracle, ::testing::ValuesIn(crossCases()),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      std::string name = info.param.kernel + "_" + info.param.preset;
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace polyast::analysis
