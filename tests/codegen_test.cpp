#include "poly/codegen.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "test_util.hpp"

namespace polyast::poly {
namespace {

using ir::AffExpr;
using testutil::expectSameSemantics;
using testutil::structureOf;

std::map<std::string, std::int64_t> smallParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 2 : 6;
  return params;
}

/// Identity schedules must reproduce the original program exactly — over
/// the entire PolyBench suite.
class IdentityRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(IdentityRoundTrip, SameSemantics) {
  ir::Program p = kernels::buildKernel(GetParam());
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, smallParams(p));
}

INSTANTIATE_TEST_SUITE_P(PolyBench, IdentityRoundTrip, ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& k : kernels::allKernels())
                             names.push_back(k.name);
                           return names;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Codegen, GemmInterchange) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  // (i j k) -> (i k j): the classic gemm permutation for stride-1 B/C.
  sched[1].alpha = IntMatrix{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}};
  // Keep S1 in its own sub-nest: distribute at level 1 (S1 beta1=0, S2
  // beta1=1) so the fused loop does not force S1 under the k loop.
  sched[0].beta = {0, 0, 0};
  sched[1].beta = {0, 1, 0, 0};
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, smallParams(p));
  // Structure: one outer c1 loop containing the S1 nest then the k-outer
  // S2 nest.
  EXPECT_EQ(structureOf(q), "c1(c2(S1),c2(c3(S2)))") << ir::printProgram(q);
}

TEST(Codegen, ReversalProducesReversedBounds) {
  // Reversing a doall loop i in [0,N): new iterator runs [1-N, 1) and the
  // statement reads A[-c1].
  ir::ProgramBuilder b("t");
  b.param("N", 10);
  b.array("A", {b.p("N")});
  b.array("B", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "B", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {AffExpr::term("i")}));
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].alpha.at(0, 0) = -1;
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"N", 10}});
  std::string s = ir::printProgram(q);
  EXPECT_NE(s.find("B[-c1]"), std::string::npos) << s;
}

TEST(Codegen, ShiftOffsetsDomainAndSubscripts) {
  ir::ProgramBuilder b("t");
  b.param("N", 10);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].shift[0] = AffExpr::term("N");  // c1 = i + N
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"N", 10}});
  std::string s = ir::printProgram(q);
  EXPECT_NE(s.find("A[-N+c1]"), std::string::npos) << s;
}

TEST(Codegen, FusionOfTwoLoops) {
  // Two independent loops over [0,N) fused by equal beta.
  ir::ProgramBuilder b("t");
  b.param("N", 12);
  b.array("A", {b.p("N")});
  b.array("B", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S1", "A", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S2", "B", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(2.0));
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].beta = {0, 0};
  sched[1].beta = {0, 1};
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"N", 12}});
  EXPECT_EQ(structureOf(q), "c1(S1,S2)") << ir::printProgram(q);
}

TEST(Codegen, FusionWithDifferentConstantsEmitsGuards) {
  // S1 over [0,N), S2 over [2,N-1): fused loop spans [0,N) and S2 gets
  // guards.
  ir::ProgramBuilder b("t");
  b.param("N", 12);
  b.array("A", {b.p("N")});
  b.array("B", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S1", "A", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  b.beginLoop("i", 2, b.p("N") - AffExpr(1));
  b.stmt("S2", "B", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(2.0));
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].beta = {0, 0};
  sched[1].beta = {0, 1};
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"N", 12}});
  auto stmts = q.statements();
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_TRUE(stmts[0]->guards.empty());
  EXPECT_EQ(stmts[1]->guards.size(), 2u) << ir::printProgram(q);
}

TEST(Codegen, DistributionSplitsLoop) {
  // gesummv's fused statements distributed into separate loops.
  ir::Program p = kernels::buildKernel("gesummv");
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  // Move S5 (y = alpha*tmp + beta*y) into its own outer loop.
  sched[4].beta[0] = 1;
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, smallParams(p));
  auto b = q.root;
  ASSERT_EQ(b->children.size(), 2u) << ir::printProgram(q);
}

TEST(Codegen, TriangularPermutation) {
  // for i in [0,N): for j in [0,i): S(i,j)  interchanged to j-outer:
  // for j in [0,N-1): for i in (j, N): S(i,j).
  ir::ProgramBuilder b("t");
  b.param("N", 9);
  b.array("A", {b.p("N"), b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.beginLoop("j", 0, AffExpr::term("i"));
  b.stmt("S", "A", {AffExpr::term("i"), AffExpr::term("j")},
         ir::AssignOp::Set, ir::floatLit(3.0));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].alpha = IntMatrix{{0, 1}, {1, 0}};
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"N", 9}});
  // The inner loop's lower bound must reference the outer iterator.
  std::string s = ir::printProgram(q);
  EXPECT_NE(s.find("c2 = c1+1"), std::string::npos) << s;
}

TEST(Codegen, LeafStatementsOutsideLoops) {
  // correlation has the depth-0 statement symmat[M-1][M-1] = 1.
  ir::Program p = kernels::buildKernel("correlation");
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  ir::Program q = applySchedules(scop, sched);
  expectSameSemantics(p, q, smallParams(p));
}

TEST(Codegen, MissingScheduleThrows) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  ScheduleMap sched;
  EXPECT_THROW(applySchedules(scop, sched), Error);
}

TEST(Codegen, NonPermutationAlphaRejected) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].alpha.at(0, 1) = 1;  // now a skew, not a signed permutation
  EXPECT_THROW(applySchedules(scop, sched), Error);
}

/// Random legal permutation property test: draw random per-statement
/// signed permutations; whenever the legality checker accepts, codegen must
/// produce a semantics-preserving program.
class RandomPermutations : public ::testing::TestWithParam<int> {};

TEST_P(RandomPermutations, LegalOnesPreserveSemantics) {
  auto next = [state = static_cast<std::uint64_t>(GetParam() * 2654435761u +
                                                  99)]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  const char* kernelNames[] = {"gemm", "atax", "mvt", "trisolv", "syrk"};
  int accepted = 0;
  for (int trial = 0; trial < 12; ++trial) {
    std::string name = kernelNames[next() % 5];
    ir::Program p = kernels::buildKernel(name);
    Scop scop = extractScop(p);
    PoDG g = computeDependences(scop);
    ScheduleMap sched = identitySchedules(scop);
    for (auto& [id, s] : sched) {
      std::size_t d = s.depth();
      if (d == 0) continue;
      // Random permutation (Fisher-Yates) with random signs.
      std::vector<std::size_t> perm(d);
      for (std::size_t i = 0; i < d; ++i) perm[i] = i;
      for (std::size_t i = d; i-- > 1;)
        std::swap(perm[i], perm[next() % (i + 1)]);
      s.alpha = IntMatrix(d, d);
      for (std::size_t r = 0; r < d; ++r)
        s.alpha.at(r, perm[r]) = (next() % 2) ? 1 : -1;
      for (std::size_t r = 0; r < d; ++r)
        s.shift[r] = ir::AffExpr(static_cast<std::int64_t>(next() % 5) - 2);
    }
    if (!scheduleIsLegal(scop, g, sched)) continue;
    ++accepted;
    ir::Program q = applySchedules(scop, sched);
    expectSameSemantics(p, q, smallParams(p));
  }
  // Not all random draws are legal; just record how many were exercised.
  RecordProperty("accepted", accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPermutations, ::testing::Range(0, 6));

}  // namespace
}  // namespace polyast::poly
