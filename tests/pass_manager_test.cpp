// Pass-manager tests: preset registry and pass ordering, equivalence of
// the classic entry points with their pipeline presets, per-pass
// instrumentation, and the inter-pass oracle's ability to attribute a
// semantic break to the pass that introduced it.
#include "flow/presets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "baseline/pluto.hpp"
#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "test_util.hpp"
#include "transform/flow.hpp"

namespace polyast::flow {
namespace {

std::map<std::string, std::int64_t> oddParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 3 : 7;
  return params;
}

transform::AstOptions testAstOptions() {
  transform::AstOptions o;
  o.tileSize = 3;
  o.timeTileSize = 2;
  o.unrollInner = 2;
  o.unrollOuter = 2;
  return o;
}

VerifyOptions kernelVerify(const ir::Program& p) {
  VerifyOptions v;
  v.enabled = true;
  auto params = oddParams(p);
  v.makeContext = [params](const ir::Program& q) {
    return kernels::makeContext(q, params);
  };
  return v;
}

TEST(Presets, RegistryContainsTheDocumentedNames) {
  auto names = pipelinePresets();
  for (const char* expected :
       {"polyast", "polyast-notile", "polyast-noregtile", "polyast-noskew",
        "polyast-nopar", "polyast-nofuse", "pocc", "pluto", "pocc-maxfuse",
        "pocc-nofuse", "pocc-vect", "identity", "none"})
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << expected;
  EXPECT_TRUE(hasPipelinePreset("polyast"));
  EXPECT_FALSE(hasPipelinePreset("polyhedral-magic"));
  EXPECT_THROW(makePipeline("polyhedral-magic"), Error);
}

TEST(Presets, PassOrderingMatchesAlgorithm1) {
  using Names = std::vector<std::string>;
  EXPECT_EQ(makePipeline("polyast").passNames(),
            (Names{"affine", "skew", "parallelism", "tile", "register-tile"}));
  EXPECT_EQ(makePipeline("pocc").passNames(),
            (Names{"affine", "skew", "parallelism", "tile", "wavefront",
                   "register-tile"}));
  EXPECT_EQ(makePipeline("pocc-vect").passNames(),
            (Names{"affine", "skew", "parallelism", "tile", "wavefront",
                   "intra-tile-vect", "register-tile"}));
  EXPECT_EQ(makePipeline("polyast-notile").passNames(),
            (Names{"affine", "skew", "parallelism"}));
  EXPECT_EQ(makePipeline("polyast-noregtile").passNames(),
            (Names{"affine", "skew", "parallelism", "tile"}));
  EXPECT_TRUE(makePipeline("identity").passNames().empty());
}

/// The classic entry points must produce byte-identical programs to their
/// pipeline presets (they are implemented over them; this pins the
/// equivalence against regressions in either direction).
TEST(Presets, PolyastPresetMatchesOptimize) {
  for (const char* name : {"gemm", "2mm", "mvt", "jacobi-2d-imper",
                           "seidel-2d", "cholesky"}) {
    ir::Program p = kernels::buildKernel(name);
    transform::FlowOptions fopt;
    fopt.ast = testAstOptions();
    ir::Program viaOptimize = transform::optimize(p, fopt);

    PipelineOptions popt;
    popt.ast = testAstOptions();
    PassContext ctx;
    ir::Program viaPipeline = makePipeline("polyast", popt).run(p, ctx);
    EXPECT_EQ(ir::printProgram(viaOptimize), ir::printProgram(viaPipeline))
        << name;
  }
}

TEST(Presets, PoccPresetMatchesPlutoOptimize) {
  for (const char* name : {"gemm", "2mm", "seidel-2d"}) {
    ir::Program p = kernels::buildKernel(name);
    baseline::PlutoOptions bopt;
    bopt.ast = testAstOptions();
    bopt.vectorizeIntraTile = true;
    ir::Program viaBaseline = baseline::plutoOptimize(p, bopt);

    PipelineOptions popt;
    popt.ast = testAstOptions();
    ir::Program viaPipeline = makePipeline("pocc-vect", popt).run(p);
    EXPECT_EQ(ir::printProgram(viaBaseline), ir::printProgram(viaPipeline))
        << name;
  }
}

TEST(Presets, IdentityPipelineIsANoOp) {
  ir::Program p = kernels::buildKernel("gemm");
  ir::Program q = makePipeline("identity").run(p);
  EXPECT_EQ(ir::printProgram(p), ir::printProgram(q));
}

TEST(PipelineReport, RecordsTimingCountersAndOracleVerdicts) {
  ir::Program p = kernels::buildKernel("gemm");
  PipelineOptions popt;
  popt.ast = testAstOptions();
  PassContext ctx;
  ctx.verify = kernelVerify(p);
  makePipeline("polyast", popt).run(p, ctx);

  ASSERT_EQ(ctx.report.passes.size(), 5u);
  for (const auto& pass : ctx.report.passes) {
    EXPECT_GE(pass.millis, 0.0) << pass.pass;
    EXPECT_TRUE(pass.verified) << pass.pass;
    EXPECT_EQ(pass.oracleMaxAbsDiff, 0.0) << pass.pass;
  }
  EXPECT_GE(ctx.report.totalMillis, 0.0);
  // gemm: the k-reduction nest parallelizes and tiles.
  EXPECT_GE(ctx.report.counter("doall") + ctx.report.counter("reduction"), 1);
  EXPECT_GE(ctx.report.counter("bands_tiled"), 1);
  EXPECT_NE(ctx.report.find("tile"), nullptr);
  EXPECT_EQ(ctx.report.find("wavefront"), nullptr);
  EXPECT_FALSE(ctx.report.summary().empty());
}

TEST(FlowReport, RecordsParallelismDetectionOutcome) {
  // Previously FlowReport dropped the detectParallelism result entirely;
  // benches could not assert which parallel kind was selected.
  transform::FlowOptions fopt;
  fopt.ast = testAstOptions();

  ir::Program gemm = kernels::buildKernel("gemm");
  transform::FlowReport r;
  transform::optimize(gemm, fopt, &r);
  EXPECT_GE(r.parallelism.doall + r.parallelism.reduction, 1);
  EXPECT_GE(r.parallelism.total(), 1);

  ir::Program stencil = kernels::buildKernel("jacobi-2d-imper");
  transform::FlowReport rs;
  transform::optimize(stencil, fopt, &rs);
  EXPECT_GE(rs.parallelism.pipeline + rs.parallelism.reductionPipeline, 1);
}

/// A deliberately semantics-breaking pass: appends an unsatisfiable guard
/// to every statement, so nothing executes after it.
class BreakSemanticsPass final : public Pass {
 public:
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext&) override {
    for (const auto& stmt : program.statements())
      stmt->guards.push_back(ir::AffExpr(-1));
    return {};
  }

 private:
  inline static const std::string name_ = "break-semantics";
};

TEST(VerifyEachPass, AttributesTheBreakingPass) {
  ir::Program p = kernels::buildKernel("gemm");
  PassPipeline pipe("broken");
  pipe.add(std::make_shared<SkewPass>(testAstOptions()))
      .add(std::make_shared<BreakSemanticsPass>())
      .add(std::make_shared<TilePass>(testAstOptions()));
  PassContext ctx;
  ctx.verify = kernelVerify(p);
  try {
    pipe.run(p, ctx);
    FAIL() << "verification should have caught the broken pass";
  } catch (const VerificationError& e) {
    EXPECT_EQ(e.pass(), "break-semantics");
    EXPECT_NE(std::string(e.what()).find("break-semantics"),
              std::string::npos);
  }
  // The report covers everything up to and including the offender — the
  // passes before it verified clean, so the break is pinpointed.
  ASSERT_EQ(ctx.report.passes.size(), 2u);
  EXPECT_EQ(ctx.report.passes[0].pass, "skew");
  EXPECT_TRUE(ctx.report.passes[0].verified);
  EXPECT_EQ(ctx.report.passes[1].pass, "break-semantics");
}

TEST(VerifyEachPass, CleanPipelineDoesNotThrow) {
  ir::Program p = kernels::buildKernel("seidel-2d");
  PipelineOptions popt;
  popt.ast = testAstOptions();
  PassContext ctx;
  ctx.verify = kernelVerify(p);
  ir::Program q = makePipeline("pocc", popt).run(p, ctx);
  testutil::expectSameSemantics(p, q, oddParams(p));
}

TEST(PassContext, DumpAfterSelectedPasses) {
  ir::Program p = kernels::buildKernel("gemm");
  PipelineOptions popt;
  popt.ast = testAstOptions();
  std::ostringstream dumps;
  PassContext ctx;
  ctx.dump.stream = &dumps;
  ctx.dump.after = {"skew", "tile"};
  makePipeline("polyast", popt).run(p, ctx);
  std::string text = dumps.str();
  EXPECT_NE(text.find("after pass 'skew'"), std::string::npos);
  EXPECT_NE(text.find("after pass 'tile'"), std::string::npos);
  EXPECT_EQ(text.find("after pass 'affine'"), std::string::npos);
}

TEST(AffineTransformPass, SurfacesFallbackReasonInsteadOfSwallowingIt) {
  // A negative shift bound rejects every retiming solution (even all-zero
  // shifts), so the scheduler exhausts its search and throws. The old
  // flow silently fell back to identity schedules and discarded the
  // reason; the pass reports both the fallback and the message.
  ir::Program p = kernels::buildKernel("gemm");
  transform::FlowOptions fopt;
  fopt.ast = testAstOptions();
  fopt.affine.maxShift = -1;
  transform::FlowReport report;
  ir::Program q = transform::optimize(p, fopt, &report);
  EXPECT_FALSE(report.affineStageSucceeded);
  EXPECT_FALSE(report.affineFailureReason.empty());
  testutil::expectSameSemantics(p, q, oddParams(p));
}

TEST(Pipeline, AblationPresetsPreserveSemantics) {
  ir::Program p = kernels::buildKernel("2mm");
  PipelineOptions popt;
  popt.ast = testAstOptions();
  for (const char* preset :
       {"polyast-nofuse", "polyast-noskew", "polyast-nopar",
        "polyast-notile", "polyast-noregtile", "pocc-maxfuse",
        "pocc-nofuse"}) {
    PassContext ctx;
    ctx.verify = kernelVerify(p);
    ir::Program q = makePipeline(preset, popt).run(p, ctx);
    SCOPED_TRACE(preset);
    testutil::expectSameSemantics(p, q, oddParams(p));
  }
}

}  // namespace
}  // namespace polyast::flow
