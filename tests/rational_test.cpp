#include "support/rational.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace polyast {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  Rational zero(0, 7);
  EXPECT_EQ(zero.num(), 0);
  EXPECT_EQ(zero.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), Error);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, IntegerConversion) {
  EXPECT_TRUE(Rational(8, 4).isInteger());
  EXPECT_EQ(Rational(8, 4).asInteger(), 2);
  EXPECT_THROW(Rational(1, 2).asInteger(), Error);
}

TEST(Rational, AdditionAvoidsPrematureOverflow) {
  // 2^61/3 + 2^61/3: naive cross-multiplication of denominators would be
  // fine here, but mixed denominators stress the gcd path.
  Rational big(std::int64_t{1} << 61, 3);
  Rational sum = big + big;
  EXPECT_EQ(sum, Rational(std::int64_t{1} << 62, 3));
}

TEST(CheckedMath, OverflowThrows) {
  std::int64_t big = std::int64_t{1} << 62;
  EXPECT_THROW(checkedAdd(big, big), Error);
  EXPECT_THROW(checkedMul(big, 4), Error);
}

TEST(IntDivision, FloorAndCeil) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_THROW(floorDiv(1, 0), Error);
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(lcm64(4, 6), 12);
}

class RationalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RationalPropertyTest, FieldAxiomsOnSmallFractions) {
  int seed = GetParam();
  // Deterministic pseudo-random small fractions.
  auto next = [state = static_cast<std::uint64_t>(seed + 1)]() mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::int64_t>((state >> 33) % 19) - 9;
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::int64_t an = next(), ad = next(), bn = next(), bd = next();
    if (ad == 0 || bd == 0) continue;
    Rational a(an, ad), b(bn, bd);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) - b, a);
    if (!b.isZero()) EXPECT_EQ((a / b) * b, a);
    EXPECT_EQ(a * (b + Rational(1)), a * b + a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace polyast
