#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "support/error.hpp"

namespace polyast::ir {
namespace {

AffExpr v(const std::string& s) { return AffExpr::term(s); }

TEST(AffExpr, Arithmetic) {
  AffExpr e = v("i") * 2 + AffExpr(3) - v("j");
  EXPECT_EQ(e.coeff("i"), 2);
  EXPECT_EQ(e.coeff("j"), -1);
  EXPECT_EQ(e.constant(), 3);
  EXPECT_EQ(e.coeff("k"), 0);
}

TEST(AffExpr, ZeroCoefficientsDropped) {
  AffExpr e = v("i") - v("i");
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.constant(), 0);
}

TEST(AffExpr, Substitution) {
  // i -> i' - j applied to 2i + j + 1 gives 2i' - j + 1.
  AffExpr e = v("i") * 2 + v("j") + AffExpr(1);
  AffExpr r = e.substituted("i", v("ip") - v("j"));
  EXPECT_EQ(r.coeff("ip"), 2);
  EXPECT_EQ(r.coeff("j"), -1);
  EXPECT_EQ(r.constant(), 1);
}

TEST(AffExpr, Evaluate) {
  AffExpr e = v("i") * 3 - v("j") + AffExpr(7);
  EXPECT_EQ(e.evaluate({{"i", 2}, {"j", 5}}), 8);
  EXPECT_THROW(e.evaluate({{"i", 2}}), Error);
}

TEST(AffExpr, Printing) {
  EXPECT_EQ((v("i") * 2 - v("j") + AffExpr(-1)).str(), "2*i-j-1");
  EXPECT_EQ(AffExpr(0).str(), "0");
}

TEST(Expr, SubstituteIterRewritesSubscriptsAndValues) {
  // A[i][j] * i with i -> c1 - j.
  ExprPtr e = arrayRef("A", {v("i"), v("j")}) * iterRef("i");
  ExprPtr r = substituteIter(e, "i", v("c1") - v("j"));
  std::string s = r->str();
  EXPECT_NE(s.find("A[c1-j][j]"), std::string::npos) << s;
  EXPECT_NE(s.find("c1"), std::string::npos) << s;
}

TEST(Expr, SubstituteIterSharesUnchangedSubtrees) {
  ExprPtr e = arrayRef("A", {v("j")});
  ExprPtr r = substituteIter(e, "i", v("c1"));
  EXPECT_EQ(e.get(), r.get());  // untouched tree is shared, not copied
}

TEST(Expr, CollectArrayUses) {
  ExprPtr e = arrayRef("A", {v("i")}) + arrayRef("B", {v("j")}) *
                                            arrayRef("A", {v("k")});
  std::vector<ArrayUse> uses;
  collectArrayUses(e, uses);
  ASSERT_EQ(uses.size(), 3u);
  EXPECT_EQ(uses[0].array, "A");
  EXPECT_EQ(uses[1].array, "B");
  EXPECT_EQ(uses[2].array, "A");
}

TEST(Builder, BuildsNestedProgram) {
  ProgramBuilder b("t");
  b.param("N", 10);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {b.p("i")}, AssignOp::Set, floatLit(1.0));
  b.endLoop();
  Program p = b.build();
  auto stmts = p.statements();
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_EQ(stmts[0]->id, 0);
  EXPECT_EQ(stmts[0]->lhsArray, "A");
  auto loops = p.enclosingLoops();
  EXPECT_EQ(loops[0].size(), 1u);
  EXPECT_EQ(loops[0][0]->iter, "i");
}

TEST(Builder, UnbalancedLoopsThrow) {
  ProgramBuilder b("t");
  b.beginLoop("i", 0, AffExpr(4));
  EXPECT_THROW(b.build(), Error);
  b.endLoop();
  EXPECT_THROW(b.endLoop(), Error);
}

TEST(Builder, ReductionDetection) {
  ProgramBuilder b("t");
  b.param("N", 4);
  b.array("A", {b.p("N")});
  b.array("s", {AffExpr(1)});
  b.beginLoop("i", 0, b.p("N"));
  // s += A[i]: reduction update.
  b.stmt("R", "s", {AffExpr(0)}, AssignOp::AddAssign,
         arrayRef("A", {v("i")}));
  // s += s * A[i]: lhs re-read, not a pure reduction.
  b.stmt("X", "s", {AffExpr(0)}, AssignOp::AddAssign,
         arrayRef("s", {AffExpr(0)}) * arrayRef("A", {v("i")}));
  // s = A[i]: plain assignment.
  b.stmt("W", "s", {AffExpr(0)}, AssignOp::Set, arrayRef("A", {v("i")}));
  b.endLoop();
  auto stmts = b.build().statements();
  EXPECT_TRUE(stmts[0]->isReductionUpdate);
  EXPECT_FALSE(stmts[1]->isReductionUpdate);
  EXPECT_FALSE(stmts[2]->isReductionUpdate);
}

TEST(Clone, DeepCopyIsIndependent) {
  Program p = kernels::buildKernel("gemm");
  Program q = p.deepCopy();
  // Mutate q's first loop bound; p must be unaffected.
  auto qLoops = q.enclosingLoops();
  qLoops[0][0]->upper = Bound(AffExpr(1));
  auto pLoops = p.enclosingLoops();
  EXPECT_EQ(pLoops[0][0]->upper.single().coeff("NI"), 1);
}

TEST(Printer, GemmLooksLikeC) {
  Program p = kernels::buildKernel("gemm");
  std::string s = printProgram(p);
  EXPECT_NE(s.find("for (i = 0; i < NI; i++) {"), std::string::npos) << s;
  EXPECT_NE(s.find("S2: C[i][j] += ((alpha[0] * A[i][k]) * B[k][j]);"),
            std::string::npos)
      << s;
}

TEST(Printer, GuardsArePrinted) {
  ProgramBuilder b("t");
  b.param("N", 4);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {v("i")}, AssignOp::Set, floatLit(0.0));
  b.endLoop();
  Program p = b.build();
  p.statements()[0]->guards.push_back(v("i") - AffExpr(1));
  std::string s = printProgram(p);
  EXPECT_NE(s.find("if (i-1 >= 0) S:"), std::string::npos) << s;
}

TEST(Bounds, MaxMinPrinting) {
  Bound lo;
  lo.parts = {AffExpr(0), v("j") - AffExpr(2)};
  EXPECT_EQ(lo.str(true), "max(0, j-2)");
  Bound hi;
  hi.parts = {v("N"), v("j") + AffExpr(32)};
  EXPECT_EQ(hi.str(false), "min(N, j+32)");
}

TEST(RenameIterInTree, AppliesEverywhere) {
  Program p = kernels::buildKernel("gemm");
  // Rename k -> kk throughout, including the loop header.
  renameIterInTree(p.root, "k", "kk");
  std::string s = printProgram(p);
  EXPECT_EQ(s.find("A[i][k]"), std::string::npos) << s;
  EXPECT_NE(s.find("A[i][kk]"), std::string::npos) << s;
  EXPECT_NE(s.find("for (kk = 0"), std::string::npos) << s;
}

TEST(SubstituteIterInTree, RefusesShadowedIterator) {
  Program p = kernels::buildKernel("gemm");
  // Substituting k from above its defining loop must be rejected.
  EXPECT_THROW(substituteIterInTree(p.root, "k", v("kk")), Error);
}

TEST(Kernels, AllTwentyTwoRegistered) {
  const auto& ks = kernels::allKernels();
  EXPECT_EQ(ks.size(), 22u);
  // Spot-check the Table II names.
  for (const char* name :
       {"2mm", "3mm", "adi", "atax", "bicg", "cholesky", "correlation",
        "covariance", "doitgen", "fdtd-2d", "fdtd-apml", "gemm", "gemver",
        "gesummv", "jacobi-1d-imper", "jacobi-2d-imper", "mvt", "seidel-2d",
        "symm", "syr2k", "syrk", "trisolv"}) {
    EXPECT_NO_THROW(kernels::kernel(name)) << name;
  }
}

TEST(Kernels, AllBuildableAndNonEmpty) {
  for (const auto& k : kernels::allKernels()) {
    Program p = k.build();
    EXPECT_FALSE(p.statements().empty()) << k.name;
    EXPECT_GT(k.flops(p.paramDefaults), 0.0) << k.name;
  }
}

}  // namespace
}  // namespace polyast::ir
