#include "dl/dl_model.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"

namespace polyast::dl {
namespace {

using ir::AffExpr;

AffExpr v(const std::string& s) { return AffExpr::term(s); }

LoopNestModel nestOf(const ir::Program& p, std::size_t firstStmt,
                     std::size_t count) {
  LoopNestModel m;
  auto stmts = p.statements();
  auto loops = p.enclosingLoops();
  // Union of iterators over the selected statements, in nesting order of
  // the deepest statement.
  std::size_t deepest = firstStmt;
  for (std::size_t i = firstStmt; i < firstStmt + count; ++i) {
    if (loops[stmts[i]->id].size() > loops[stmts[deepest]->id].size())
      deepest = i;
    m.stmts.push_back(stmts[i]);
  }
  for (const auto& l : loops[stmts[deepest]->id]) m.iters.push_back(l->iter);
  return m;
}

TEST(DL, Figure4Example) {
  // for ti,tj,tk tiles: A[i][j] += B[k][i]
  // DL = Ti*Tj/L + Tk*Ti (B's last dim i is traversed by i, unit stride ->
  // /L as well per the figure: DLB = Tk * Ti / L).
  ir::ProgramBuilder b("fig4");
  b.param("N", 64).param("M", 64).param("K", 64);
  b.array("A", {v("N"), v("M")});
  b.array("B", {v("K"), v("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.beginLoop("j", 0, b.p("M"));
  b.beginLoop("k", 0, b.p("K"));
  b.stmt("S", "A", {v("i"), v("j")}, ir::AssignOp::AddAssign,
         ir::arrayRef("B", {v("k"), v("i")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  LoopNestModel nest = nestOf(p, 0, 1);
  CacheParams cache;
  cache.lineSize = 8;
  std::map<std::string, std::int64_t> tile{{"i", 16}, {"j", 32}, {"k", 8}};
  // DL_A = Ti * (Tj/L) = 16 * 4 = 64. DL_B = Tk * (Ti/L) = 8 * 2 = 16.
  EXPECT_DOUBLE_EQ(distinctLines(nest, tile, cache), 64.0 + 16.0);
}

TEST(DL, ScalarCountsOneLine) {
  ir::ProgramBuilder b("t");
  b.param("N", 64);
  b.array("s", {AffExpr(1)});
  b.array("A", {v("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "s", {AffExpr(0)}, ir::AssignOp::AddAssign,
         ir::arrayRef("A", {v("i")}));
  b.endLoop();
  ir::Program p = b.build();
  LoopNestModel nest = nestOf(p, 0, 1);
  CacheParams cache;
  std::map<std::string, std::int64_t> tile{{"i", 64}};
  // s[0]: span 1 -> 1 line (unit "stride" not applicable, constant sub).
  // A[i]: 64/8 = 8 lines.
  EXPECT_DOUBLE_EQ(distinctLines(nest, tile, cache), 1.0 + 8.0);
}

TEST(DL, DuplicateReferencesCountedOnce) {
  // A[i] appearing twice is one reference group.
  ir::ProgramBuilder b("t");
  b.param("N", 64);
  b.array("A", {v("N")});
  b.array("B", {v("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "B", {v("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {v("i")}) * ir::arrayRef("A", {v("i")}));
  b.endLoop();
  ir::Program p = b.build();
  LoopNestModel nest = nestOf(p, 0, 1);
  CacheParams cache;
  std::map<std::string, std::int64_t> tile{{"i", 32}};
  EXPECT_DOUBLE_EQ(distinctLines(nest, tile, cache), 4.0 + 4.0);
}

TEST(DL, NonUnitStrideGetsNoLineDiscount) {
  // A[8*i] touches a new line every iteration.
  ir::ProgramBuilder b("t");
  b.param("N", 64);
  b.array("A", {v("N") * 8});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {v("i") * 8}, ir::AssignOp::Set, ir::floatLit(0.0));
  b.endLoop();
  ir::Program p = b.build();
  LoopNestModel nest = nestOf(p, 0, 1);
  CacheParams cache;
  std::map<std::string, std::int64_t> tile{{"i", 16}};
  // span = 1 + 8*15 = 121 distinct values, no /L discount.
  EXPECT_DOUBLE_EQ(distinctLines(nest, tile, cache), 121.0);
}

TEST(DL, MemCostDecreasesWithLargerTiles) {
  ir::Program p = kernels::buildKernel("gemm");
  LoopNestModel nest = nestOf(p, 1, 1);
  CacheParams cache;
  std::map<std::string, std::int64_t> t8{{"i", 8}, {"j", 8}, {"k", 8}};
  std::map<std::string, std::int64_t> t32{{"i", 32}, {"j", 32}, {"k", 32}};
  EXPECT_GT(memCostPerIteration(nest, t8, cache),
            memCostPerIteration(nest, t32, cache));
}

TEST(DL, GemmBestOrderPutsJInnermost) {
  // C[i][j] += alpha*A[i][k]*B[k][j]: j is contiguous for C and B, k only
  // for A, i for none -> order (i, k, j).
  ir::Program p = kernels::buildKernel("gemm");
  LoopNestModel nest = nestOf(p, 1, 1);
  CacheParams cache;
  auto order = bestPermutationOrder(nest, cache);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), "j");
  EXPECT_EQ(order.front(), "i");
}

TEST(DL, TransposedAccessPrefersColumnIterInner) {
  // X[i] += A[j][i] * y[j]  (mvt's second statement): i is contiguous in A
  // and x -> i innermost.
  ir::Program p = kernels::buildKernel("mvt");
  LoopNestModel nest = nestOf(p, 1, 1);
  CacheParams cache;
  auto order = bestPermutationOrder(nest, cache);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order.back(), "i");
  EXPECT_EQ(order.front(), "j");
}

TEST(DL, ContiguityCounts) {
  ir::Program p = kernels::buildKernel("gemm");
  LoopNestModel nest = nestOf(p, 1, 1);
  EXPECT_EQ(contiguityCount(nest, "j"), 2);  // C[i][j], B[k][j]
  EXPECT_EQ(contiguityCount(nest, "k"), 1);  // A[i][k]
  EXPECT_EQ(contiguityCount(nest, "i"), 0);
}

TEST(DL, FusionOfSharedArrayProfitable) {
  // S1: B[i] = A[i]; S2: C[i] = A[i] + B[i]. Fusing reuses A and B while
  // they are resident.
  ir::ProgramBuilder b("t");
  b.param("N", 1024);
  b.array("A", {v("N")});
  b.array("B", {v("N")});
  b.array("C", {v("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S1", "B", {v("i")}, ir::AssignOp::Set, ir::arrayRef("A", {v("i")}));
  b.endLoop();
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S2", "C", {v("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {v("i")}) + ir::arrayRef("B", {v("i")}));
  b.endLoop();
  ir::Program p = b.build();
  auto stmts = p.statements();
  LoopNestModel a{{"i"}, {stmts[0]}};
  LoopNestModel c{{"i"}, {stmts[1]}};
  LoopNestModel fused{{"i"}, {stmts[0], stmts[1]}};
  CacheParams cache;
  EXPECT_TRUE(fusionProfitable(a, c, fused, cache));
}

TEST(DL, TlbLevelModeling) {
  // The DL model also targets TLB entries (Sec. III-B): with a 4KB page
  // (512 doubles) as the "line", a row-major 2-D walk touches one entry
  // per Tj/512 columns — the same formula at a different granularity.
  ir::Program p = kernels::buildKernel("gemm");
  LoopNestModel nest = nestOf(p, 1, 1);
  CacheParams tlb;
  tlb.lineSize = 512;        // doubles per 4KB page
  tlb.capacityLines = 64;    // typical L1 DTLB entries
  CacheParams cache;         // 64B lines
  std::map<std::string, std::int64_t> tile{{"i", 32}, {"j", 32}, {"k", 32}};
  // Fewer distinct pages than distinct cache lines, always.
  EXPECT_LT(distinctLines(nest, tile, tlb),
            distinctLines(nest, tile, cache));
  // Both levels agree on the best permutation for gemm.
  EXPECT_EQ(bestPermutationOrder(nest, tlb).back(), "j");
}

TEST(DL, MinMemCostRespectsCapacity) {
  ir::Program p = kernels::buildKernel("gemm");
  LoopNestModel nest = nestOf(p, 1, 1);
  CacheParams tiny;
  tiny.capacityLines = 64;  // forces small tiles
  CacheParams big;
  big.capacityLines = 1 << 20;
  EXPECT_GE(minMemCost(nest, tiny), minMemCost(nest, big));
}

}  // namespace
}  // namespace polyast::dl
