#include "poly/scop.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "support/error.hpp"

namespace polyast::poly {
namespace {

TEST(Scop, GemmExtraction) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  ASSERT_EQ(scop.stmts.size(), 2u);
  const PolyStmt& s1 = scop.stmts[0];
  const PolyStmt& s2 = scop.stmts[1];
  EXPECT_EQ(s1.iters, (std::vector<std::string>{"i", "j"}));
  EXPECT_EQ(s2.iters, (std::vector<std::string>{"i", "j", "k"}));
  // S1 accesses: write C, read beta (plus the compound-assign re-read of C).
  EXPECT_EQ(s1.accesses[0].array, "C");
  EXPECT_TRUE(s1.accesses[0].isWrite);
  bool readsBeta = false;
  for (const auto& a : s1.accesses)
    if (a.array == "beta" && !a.isWrite) readsBeta = true;
  EXPECT_TRUE(readsBeta);
  // Domains: with NI=NJ=NK fixed to 6 the S2 domain has 216 points.
  IntSet d = s2.domain;
  std::size_t base = s2.iters.size();
  for (std::size_t p2 = 0; p2 < scop.params.size(); ++p2) {
    std::vector<std::int64_t> row(d.numVars(), 0);
    row[base + p2] = 1;
    d.addEquality(std::move(row), -6);
  }
  EXPECT_EQ(d.countPoints(), 216);
}

TEST(Scop, TriangularDomain) {
  ir::Program p = kernels::buildKernel("trisolv");
  Scop scop = extractScop(p);
  // S2 is the j < i statement.
  const PolyStmt& s2 = scop.byId(1);
  ASSERT_EQ(s2.iters.size(), 2u);
  IntSet d = s2.domain;
  std::vector<std::int64_t> row(d.numVars(), 0);
  row[2] = 1;  // N
  d.addEquality(std::move(row), -5);
  // Points with 0 <= j < i < 5: 10.
  EXPECT_EQ(d.countPoints(), 10);
}

TEST(Scop, CommonLoopsAndTextualOrder) {
  ir::Program p = kernels::buildKernel("2mm");
  Scop scop = extractScop(p);
  ASSERT_EQ(scop.stmts.size(), 4u);
  const PolyStmt& R = scop.byId(0);
  const PolyStmt& S = scop.byId(1);
  const PolyStmt& T = scop.byId(2);
  EXPECT_EQ(scop.commonLoops(R, S), 2u);  // share i, j
  EXPECT_EQ(scop.commonLoops(R, T), 0u);  // different nests
  EXPECT_TRUE(scop.textuallyBefore(R, S));
  EXPECT_TRUE(scop.textuallyBefore(S, T));
  EXPECT_FALSE(scop.textuallyBefore(T, R));
}

TEST(Scop, ParamMinApplied) {
  ir::Program p = kernels::buildKernel("gemm");
  ScopOptions opt;
  opt.paramMin = 10;
  Scop scop = extractScop(p, opt);
  const auto& dom = scop.stmts[0].domain;
  // NI >= 10 must be part of the domain: NI = 5 makes it empty-with-i=7.
  IntSet d = dom;
  std::vector<std::int64_t> row(d.numVars(), 0);
  row[2] = 1;  // NI is the first parameter
  d.addEquality(std::move(row), -5);
  EXPECT_TRUE(d.isEmpty());
}

TEST(Scop, GuardsEnterDomain) {
  ir::ProgramBuilder b("t");
  b.param("N", 8);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {ir::AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  p.statements()[0]->guards.push_back(ir::AffExpr::term("i") -
                                      ir::AffExpr(3));
  Scop scop = extractScop(p);
  IntSet d = scop.stmts[0].domain;
  std::vector<std::int64_t> row(d.numVars(), 0);
  row[1] = 1;
  d.addEquality(std::move(row), -8);  // N = 8
  EXPECT_EQ(d.countPoints(), 5);     // i in 3..7
}

TEST(Scop, NonUnitStepModeledWithStrideVariable) {
  ir::ProgramBuilder b("t");
  b.param("N", 8);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {ir::AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  p.enclosingLoops()[0][0]->step = 2;
  Scop scop = extractScop(p);
  const PolyStmt& ps = scop.stmts.front();
  EXPECT_EQ(ps.numExists, 1u);
  EXPECT_TRUE(ps.exactStrides);
  // Domain over [i, N, q]: even i reachable (i == 2q), odd i not.
  EXPECT_TRUE(ps.domain.contains({2, 8, 1}));
  EXPECT_FALSE(ps.domain.contains({3, 8, 1}));
  EXPECT_FALSE(ps.domain.contains({3, 8, 2}));
}

TEST(Scop, SteppedLoopWithMaxLowerBoundIsInexact) {
  // A stepped loop whose lower bound is a max() of two parts cannot pin
  // its stride affinely: the extraction over-approximates and says so.
  ir::ProgramBuilder b("t");
  b.param("N", 8);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {ir::AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  auto loop = p.enclosingLoops()[0][0];
  loop->step = 2;
  loop->lower.parts.push_back(ir::AffExpr::term("N") - ir::AffExpr(8));
  Scop scop = extractScop(p);
  const PolyStmt& ps = scop.stmts.front();
  EXPECT_EQ(ps.numExists, 0u);
  EXPECT_FALSE(ps.exactStrides);
  // Over-approximation keeps every in-range point, including odd ones.
  EXPECT_TRUE(ps.domain.contains({3, 8}));
}

TEST(Scop, AllKernelsExtract) {
  for (const auto& k : kernels::allKernels()) {
    ir::Program p = k.build();
    Scop scop = extractScop(p);
    EXPECT_EQ(scop.stmts.size(), p.statements().size()) << k.name;
    for (const auto& ps : scop.stmts) {
      EXPECT_FALSE(ps.domain.isEmpty()) << k.name << " " << ps.stmt->label;
      EXPECT_TRUE(ps.accesses[0].isWrite) << k.name;
    }
  }
}

}  // namespace
}  // namespace polyast::poly
