#include "poly/schedule.hpp"
#include "ir/builder.hpp"

#include <gtest/gtest.h>

#include "kernels/polybench.hpp"

namespace polyast::poly {
namespace {

TEST(Schedule, IdentityShape) {
  Schedule s = Schedule::identity(3);
  EXPECT_EQ(s.depth(), 3u);
  EXPECT_EQ(s.beta.size(), 4u);
  EXPECT_TRUE(s.alpha.isSignedPermutation());
  EXPECT_EQ(s.sourceIter(0), 0u);
  EXPECT_EQ(s.sourceIter(2), 2u);
  EXPECT_EQ(s.sign(1), 1);
}

TEST(Schedule, PermutationAccessors) {
  Schedule s = Schedule::identity(2);
  s.alpha = IntMatrix{{0, 1}, {-1, 0}};  // level0=j, level1=-i
  EXPECT_EQ(s.sourceIter(0), 1u);
  EXPECT_EQ(s.sign(0), 1);
  EXPECT_EQ(s.sourceIter(1), 0u);
  EXPECT_EQ(s.sign(1), -1);
}

/// The original program order must always be legal — checked for the whole
/// PolyBench suite (a strong self-consistency test of dependence analysis +
/// legality machinery).
class IdentityIsLegal : public ::testing::TestWithParam<std::string> {};

TEST_P(IdentityIsLegal, AllDepsCarried) {
  ir::Program p = kernels::buildKernel(GetParam());
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  EXPECT_TRUE(scheduleIsLegal(scop, g, sched)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PolyBench, IdentityIsLegal, ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& k : kernels::allKernels())
                             names.push_back(k.name);
                           return names;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Legality, GemmLoopInterchangeIsLegal) {
  // gemm's i and j loops are both parallel for S1; interchanging (i j k) ->
  // (j i k) is legal.
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].alpha = IntMatrix{{0, 1}, {1, 0}};
  sched[1].alpha = IntMatrix{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}};
  EXPECT_TRUE(scheduleIsLegal(scop, g, sched));
}

TEST(Legality, GemmReductionLoopReversalIsIllegal) {
  // Reversing the k loop flips the serializing accumulation dependence.
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  sched[1].alpha.at(2, 2) = -1;
  EXPECT_FALSE(scheduleIsLegal(scop, g, sched));
}

TEST(Legality, SeidelInterchangeIllegal) {
  // seidel-2d has dependences (0, 1, -1): swapping i and j flips them.
  ir::Program p = kernels::buildKernel("seidel-2d");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].alpha = IntMatrix{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}};
  EXPECT_FALSE(scheduleIsLegal(scop, g, sched));
}

TEST(Legality, TimeLoopReversalIllegal) {
  ir::Program p = kernels::buildKernel("jacobi-1d-imper");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  for (auto& [id, s] : sched) s.alpha.at(0, 0) = -1;
  EXPECT_FALSE(scheduleIsLegal(scop, g, sched));
}

TEST(Legality, FusionOf2mmProducerConsumerRespectsOrder) {
  // Fusing the two i-loops of 2mm (same beta at level 0) is legal because
  // U reads tmp[i][k] — all tmp values of row i are ready after S at the
  // same i... but only if the j/k structure still orders S before U. With
  // plain loop fusion at level 0 only (identity inside), U at (i, j, k)
  // reads tmp[i][k]; S at (i, k, *) writes it. At equal i, S must come
  // first; beta level 1 ordering (S group before U group) achieves that.
  ir::Program p = kernels::buildKernel("2mm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  // R,S get beta1=0 with R before S's k-loop (beta2 0 vs 1); T,U get
  // beta1=1 likewise. All four share beta0=0 (fused outer i).
  sched[0].beta = {0, 0, 0};
  sched[1].beta = {0, 0, 1, 0};
  sched[2].beta = {0, 1, 0};
  sched[3].beta = {0, 1, 1, 0};
  EXPECT_TRUE(scheduleIsLegal(scop, g, sched));
  // Flipping the inner-group order (T,U before R,S) breaks the tmp flow.
  sched[0].beta = {0, 1, 0};
  sched[1].beta = {0, 1, 1, 0};
  sched[2].beta = {0, 0, 0};
  sched[3].beta = {0, 0, 1, 0};
  EXPECT_FALSE(scheduleIsLegal(scop, g, sched));
}

TEST(Legality, ShiftRealignsStencil) {
  // A[i] = A[i-1] (flow distance 1). Scheduling the statement with shift
  // c=5 changes nothing semantically (single statement, pure retiming must
  // stay legal).
  ir::ProgramBuilder b("t");
  b.param("N", 16);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 1, b.p("N"));
  b.stmt("S", "A", {ir::AffExpr::term("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {ir::AffExpr::term("i") - ir::AffExpr(1)}));
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  sched[0].shift[0] = ir::AffExpr(5);
  EXPECT_TRUE(scheduleIsLegal(scop, g, sched));
  // Reversal of the same loop is illegal.
  sched[0].shift[0] = ir::AffExpr(0);
  sched[0].alpha.at(0, 0) = -1;
  EXPECT_FALSE(scheduleIsLegal(scop, g, sched));
}

TEST(Legality, RelativeShiftBreaksOrIncreasesSlack) {
  // S1: B[i] = A[i]; S2: C[i] = B[i-2]. Shifting S2 by -2 aligns the read
  // with the producing iteration; any fusion needs B's value ready.
  ir::ProgramBuilder b("t");
  b.param("N", 16);
  b.array("A", {b.p("N")});
  b.array("B", {b.p("N")});
  b.array("C", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S1", "B", {ir::AffExpr::term("i")}, ir::AssignOp::Set,
         ir::arrayRef("A", {ir::AffExpr::term("i")}));
  b.endLoop();
  b.beginLoop("i", 2, b.p("N"));
  b.stmt("S2", "C", {ir::AffExpr::term("i")}, ir::AssignOp::Set,
         ir::arrayRef("B", {ir::AffExpr::term("i") - ir::AffExpr(2)}));
  b.endLoop();
  ir::Program p = b.build();
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  // Fuse both loops, same beta; S2 reads B[i-2] which S1 wrote 2 iterations
  // earlier: legal.
  sched[0].beta = {0, 0};
  sched[1].beta = {0, 1};
  EXPECT_TRUE(scheduleIsLegal(scop, g, sched));
  // Shift S2 earlier by 3 (c = -3): now instance i of S2 runs alongside
  // S1 instance i-3 but reads B[i-2], which has not been written: illegal.
  sched[1].shift[0] = ir::AffExpr(-3);
  EXPECT_FALSE(scheduleIsLegal(scop, g, sched));
  // Shift by +1 only adds slack: legal.
  sched[1].shift[0] = ir::AffExpr(1);
  EXPECT_TRUE(scheduleIsLegal(scop, g, sched));
}

TEST(Schedule, CheckDependenceStatuses) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = extractScop(p);
  PoDG g = computeDependences(scop);
  ScheduleMap sched = identitySchedules(scop);
  std::size_t rows = normalizedRows(scop);
  EXPECT_EQ(rows, 9u);  // 2*3+1 plus the trailing-beta allowance
  // At 0 rows every dependence is merely Respected (nothing ordered yet).
  for (const auto& d : g.deps)
    EXPECT_EQ(checkDependence(scop, d, sched, 0), DepStatus::Respected);
  // At full depth everything is Carried.
  for (const auto& d : g.deps)
    EXPECT_EQ(checkDependence(scop, d, sched, rows), DepStatus::Carried);
}

}  // namespace
}  // namespace polyast::poly
