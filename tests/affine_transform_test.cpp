#include "transform/affine.hpp"

#include <gtest/gtest.h>

#include "kernels/polybench.hpp"
#include "poly/codegen.hpp"
#include "test_util.hpp"

namespace polyast::transform {
namespace {

using poly::PoDG;
using poly::ScheduleMap;
using poly::Scop;
using testutil::expectSameSemantics;
using testutil::structureOf;

std::map<std::string, std::int64_t> smallParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 2 : 6;
  return params;
}

/// The affine stage must produce a legal, semantics-preserving schedule for
/// every kernel of the suite.
class AffineOnAllKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(AffineOnAllKernels, LegalAndSemanticsPreserving) {
  ir::Program p = kernels::buildKernel(GetParam());
  Scop scop = poly::extractScop(p);
  ScheduleMap sched = computeAffineTransform(scop);
  PoDG podg = poly::computeDependences(scop);
  EXPECT_TRUE(poly::scheduleIsLegal(scop, podg, sched)) << GetParam();
  ir::Program q = poly::applySchedules(scop, sched);
  expectSameSemantics(p, q, smallParams(p));
}

INSTANTIATE_TEST_SUITE_P(PolyBench, AffineOnAllKernels,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& k : kernels::allKernels())
                             names.push_back(k.name);
                           return names;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Affine2mm, ReproducesFigure3Structure) {
  // The paper's Fig. 3: all four statements fused under the outer i loop,
  // then distributed into four bodies (R | k-outer S | T | k-outer U), with
  // S and U in (i, k, j) order for stride-1 vectorizable inner loops.
  ir::Program p = kernels::buildKernel("2mm");
  Scop scop = poly::extractScop(p);
  ScheduleMap sched = computeAffineTransform(scop);
  ir::Program q = poly::applySchedules(scop, sched);
  EXPECT_EQ(structureOf(q), "c1(c2(R),c2(c3(S)),c2(T),c2(c3(U)))")
      << ir::printProgram(q);
  // S must keep stride-1 innermost accesses: tmp[c1][c3] and B[c2][c3].
  std::string s = ir::printProgram(q);
  EXPECT_NE(s.find("S: tmp[c1][c3] += ((alpha[0] * A[c1][c2]) * B[c2][c3]);"),
            std::string::npos)
      << s;
  expectSameSemantics(p, q, smallParams(p));
}

TEST(AffineGemm, DistributesInitAndPermutesForSimd) {
  // C-init stays out of the k loop; S2 runs in (i, k, j) order.
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = poly::extractScop(p);
  ScheduleMap sched = computeAffineTransform(scop);
  ir::Program q = poly::applySchedules(scop, sched);
  EXPECT_EQ(structureOf(q), "c1(c2(S1),c2(c3(S2)))") << ir::printProgram(q);
  std::string s = ir::printProgram(q);
  EXPECT_NE(s.find("B[c2][c3]"), std::string::npos) << s;
}

TEST(AffineJacobi1d, FusesWithRetiming) {
  // The two inner loops fuse under the time loop with S2 shifted by +1
  // (reads B[c2-1] after S1 produced it).
  ir::Program p = kernels::buildKernel("jacobi-1d-imper");
  Scop scop = poly::extractScop(p);
  ScheduleMap sched = computeAffineTransform(scop);
  ir::Program q = poly::applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"TSTEPS", 3}, {"N", 12}});
  // Fused: exactly one inner loop under the time loop.
  EXPECT_EQ(structureOf(q), "c1(c2(S1,S2))") << ir::printProgram(q);
}

TEST(AffineMvt, FusesTheTwoProducts) {
  // x1 += A[i][j]*y1[j] and x2 += A[j][i]*y2[j] share A: fusion is legal
  // and profitable (A reused); permutations may differ per statement.
  ir::Program p = kernels::buildKernel("mvt");
  Scop scop = poly::extractScop(p);
  ScheduleMap sched = computeAffineTransform(scop);
  ir::Program q = poly::applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"N", 8}});
}

TEST(AffineHeuristics, MaxFuseFusesMoreThanNoFuse) {
  ir::Program p = kernels::buildKernel("gesummv");
  Scop scop = poly::extractScop(p);
  AffineOptions maxOpt;
  maxOpt.fusion = FusionHeuristic::MaxLegal;
  AffineOptions noOpt;
  noOpt.fusion = FusionHeuristic::NoFusion;
  ir::Program qMax = poly::applySchedules(scop, computeAffineTransform(scop, maxOpt));
  ir::Program qNo = poly::applySchedules(scop, computeAffineTransform(scop, noOpt));
  // NoFusion: every statement in its own outer nest.
  EXPECT_EQ(qNo.root->children.size(), 5u) << ir::printProgram(qNo);
  EXPECT_LT(qMax.root->children.size(), qNo.root->children.size())
      << ir::printProgram(qMax);
  expectSameSemantics(p, qMax, {{"N", 7}});
  expectSameSemantics(p, qNo, {{"N", 7}});
}

TEST(AffineHeuristics, OriginalOrderKeepsGemmOrder) {
  ir::Program p = kernels::buildKernel("gemm");
  Scop scop = poly::extractScop(p);
  AffineOptions opt;
  opt.preferOriginalOrder = true;
  ir::Program q = poly::applySchedules(scop, computeAffineTransform(scop, opt));
  // S2 stays in (i, j, k) order: A[c1][c3] means k is still innermost.
  std::string s = ir::printProgram(q);
  EXPECT_NE(s.find("A[c1][c3]"), std::string::npos) << s;
  expectSameSemantics(p, q, smallParams(p));
}

TEST(AffineAtax, TmpReductionStructurePreserved) {
  ir::Program p = kernels::buildKernel("atax");
  Scop scop = poly::extractScop(p);
  ScheduleMap sched = computeAffineTransform(scop);
  ir::Program q = poly::applySchedules(scop, sched);
  expectSameSemantics(p, q, {{"NX", 7}, {"NY", 6}});
}

}  // namespace
}  // namespace polyast::transform
