#include "intset/intset.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace polyast {
namespace {

IntSet box2(std::int64_t xlo, std::int64_t xhi, std::int64_t ylo,
            std::int64_t yhi) {
  IntSet s({"x", "y"});
  s.addBounds(0, xlo, xhi);
  s.addBounds(1, ylo, yhi);
  return s;
}

TEST(IntSet, EmptinessBasics) {
  IntSet s({"x"});
  EXPECT_FALSE(s.isEmpty());  // unconstrained
  s.addBounds(0, 0, 10);
  EXPECT_FALSE(s.isEmpty());
  s.addInequality({1}, -20);  // x >= 20
  EXPECT_TRUE(s.isEmpty());
}

TEST(IntSet, EqualityInfeasibleByGcd) {
  IntSet s({"x", "y"});
  // 2x + 4y == 1 has no integer solution (gcd tightening catches it).
  s.addEquality({2, 4}, -1);
  EXPECT_TRUE(s.isEmpty());
}

TEST(IntSet, IntegerTighteningOfInequalities) {
  IntSet s({"x"});
  // 2x >= 1 and 2x <= 1: rationally feasible (x = 1/2) but gcd
  // normalization tightens to x >= 1 and x <= 0.
  s.addInequality({2}, -1);
  s.addInequality({-2}, 1);
  EXPECT_TRUE(s.isEmpty());
}

TEST(IntSet, ContainsChecksAllConstraints) {
  IntSet s = box2(0, 5, 0, 5);
  s.addInequality({1, -1}, 0);  // x >= y
  EXPECT_TRUE(s.contains({3, 2}));
  EXPECT_TRUE(s.contains({3, 3}));
  EXPECT_FALSE(s.contains({2, 3}));
  EXPECT_FALSE(s.contains({6, 0}));
  EXPECT_THROW(s.contains({1}), Error);
}

TEST(IntSet, MinMaxOfExpressions) {
  IntSet s = box2(1, 4, 2, 6);
  auto x = LinExpr::var(0, 2);
  auto y = LinExpr::var(1, 2);
  EXPECT_EQ(s.minOf(x), 1);
  EXPECT_EQ(s.maxOf(x), 4);
  EXPECT_EQ(s.minOf(y - x), -2);
  EXPECT_EQ(s.maxOf(y - x), 5);
  EXPECT_EQ(s.minOf(x + y), 3);
}

TEST(IntSet, MinMaxUnbounded) {
  IntSet s({"x"});
  s.addInequality({1}, 0);  // x >= 0
  EXPECT_EQ(s.minOf(LinExpr::var(0, 1)), 0);
  EXPECT_FALSE(s.maxOf(LinExpr::var(0, 1)).has_value());
}

TEST(IntSet, MinOfEmptySetIsNullopt) {
  IntSet s({"x"});
  s.addBounds(0, 5, 3);
  EXPECT_FALSE(s.minOf(LinExpr::var(0, 1)).has_value());
}

TEST(IntSet, ProjectTriangle) {
  // { (x,y) : 0 <= y <= x <= 9 } projected to y gives 0 <= y <= 9.
  IntSet s({"x", "y"});
  s.addBounds(0, 0, 9);
  s.addInequality({1, -1}, 0);   // x - y >= 0
  s.addInequality({0, 1}, 0);    // y >= 0
  IntSet p = s.project({1});
  EXPECT_EQ(p.numVars(), 1u);
  EXPECT_EQ(p.minOf(LinExpr::var(0, 1)), 0);
  EXPECT_EQ(p.maxOf(LinExpr::var(0, 1)), 9);
}

TEST(IntSet, ProjectKeepsRequestedOrder) {
  IntSet s({"a", "b", "c"});
  s.addBounds(0, 0, 1);
  s.addBounds(1, 2, 3);
  s.addBounds(2, 4, 5);
  IntSet p = s.project({2, 0});
  ASSERT_EQ(p.numVars(), 2u);
  EXPECT_EQ(p.varNames()[0], "c");
  EXPECT_EQ(p.varNames()[1], "a");
  EXPECT_EQ(p.minOf(LinExpr::var(0, 2)), 4);
  EXPECT_EQ(p.maxOf(LinExpr::var(1, 2)), 1);
}

TEST(IntSet, EnumerateCountsTriangle) {
  IntSet s({"x", "y"});
  s.addBounds(0, 0, 3);
  s.addInequality({0, 1}, 0);    // y >= 0
  s.addInequality({1, -1}, 0);   // y <= x
  // Points: x in 0..3, y in 0..x -> 1+2+3+4 = 10.
  EXPECT_EQ(s.countPoints(), 10);
}

TEST(IntSet, EnumerateEarlyStop) {
  IntSet s({"x"});
  s.addBounds(0, 0, 99);
  int seen = 0;
  bool finished = s.enumerate([&](const std::vector<std::int64_t>&) {
    return ++seen < 5;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(seen, 5);
}

TEST(IntSet, EnumerateRequiresBounded) {
  IntSet s({"x"});
  s.addInequality({1}, 0);
  EXPECT_THROW(s.countPoints(), Error);
}

TEST(IntSet, EqualityChainEliminatedExactly) {
  // x == y, y == z, x in [3,7] -> z in [3,7].
  IntSet s({"x", "y", "z"});
  s.addEquality({1, -1, 0}, 0);
  s.addEquality({0, 1, -1}, 0);
  s.addBounds(0, 3, 7);
  IntSet p = s.project({2});
  EXPECT_EQ(p.minOf(LinExpr::var(0, 1)), 3);
  EXPECT_EQ(p.maxOf(LinExpr::var(0, 1)), 7);
}

/// Property test: FM-based emptiness agrees with brute-force enumeration on
/// random small systems over a bounded box.
class EmptinessOracle : public ::testing::TestWithParam<int> {};

TEST_P(EmptinessOracle, MatchesBruteForce) {
  auto next = [state = static_cast<std::uint64_t>(GetParam() * 40503 + 17)]()
      mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int trial = 0; trial < 40; ++trial) {
    IntSet s({"x", "y", "z"});
    // Bounded box so brute force is possible.
    IntSet box({"x", "y", "z"});
    for (std::size_t v = 0; v < 3; ++v) {
      s.addBounds(v, -3, 3);
      box.addBounds(v, -3, 3);
    }
    int ncons = 1 + static_cast<int>(next() % 4);
    std::vector<Constraint> extra;
    for (int c = 0; c < ncons; ++c) {
      Constraint con;
      for (int v = 0; v < 3; ++v)
        con.coeffs.push_back(static_cast<std::int64_t>(next() % 5) - 2);
      con.constant = static_cast<std::int64_t>(next() % 7) - 3;
      con.isEquality = (next() % 4) == 0;
      s.addConstraint(con);
      extra.push_back(con);
    }
    bool bruteEmpty = true;
    box.enumerate([&](const std::vector<std::int64_t>& pt) {
      for (const auto& c : extra) {
        std::int64_t val = c.constant;
        for (int v = 0; v < 3; ++v) val += c.coeffs[v] * pt[v];
        if (c.isEquality ? val != 0 : val < 0) return true;  // keep looking
      }
      bruteEmpty = false;
      return false;  // found a point
    });
    // Rational FM emptiness is conservative: if FM says empty, brute force
    // must agree. If brute force finds a point, FM must say non-empty.
    if (s.isEmpty()) {
      EXPECT_TRUE(bruteEmpty) << s.str();
    }
    if (!bruteEmpty) {
      EXPECT_FALSE(s.isEmpty()) << s.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmptinessOracle, ::testing::Range(0, 10));

/// Property test: minOf/maxOf agree with brute-force extrema on bounded
/// random systems.
class BoundsOracle : public ::testing::TestWithParam<int> {};

TEST_P(BoundsOracle, MatchesBruteForce) {
  auto next = [state = static_cast<std::uint64_t>(GetParam() * 90001 + 5)]()
      mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int trial = 0; trial < 30; ++trial) {
    IntSet s({"x", "y"});
    s.addBounds(0, -4, 4);
    s.addBounds(1, -4, 4);
    for (int c = 0; c < 2; ++c) {
      std::vector<std::int64_t> coeffs{
          static_cast<std::int64_t>(next() % 3) - 1,
          static_cast<std::int64_t>(next() % 3) - 1};
      s.addInequality(coeffs, static_cast<std::int64_t>(next() % 9) - 2);
    }
    LinExpr obj;
    obj.coeffs = {static_cast<std::int64_t>(next() % 5) - 2,
                  static_cast<std::int64_t>(next() % 5) - 2};
    obj.constant = static_cast<std::int64_t>(next() % 5) - 2;
    std::optional<std::int64_t> bruteMin, bruteMax;
    s.enumerate([&](const std::vector<std::int64_t>& pt) {
      std::int64_t v = obj.constant + obj.coeffs[0] * pt[0] +
                       obj.coeffs[1] * pt[1];
      if (!bruteMin || v < *bruteMin) bruteMin = v;
      if (!bruteMax || v > *bruteMax) bruteMax = v;
      return true;
    });
    if (!bruteMin) continue;  // empty set
    auto mn = s.minOf(obj);
    auto mx = s.maxOf(obj);
    ASSERT_TRUE(mn && mx);
    // Rational relaxation can only widen the range.
    EXPECT_LE(*mn, *bruteMin);
    EXPECT_GE(*mx, *bruteMax);
    // With unit-ish coefficients the bounds are usually exact; check they
    // are never wildly off (within the rational hull of the box).
    EXPECT_GE(*mn, -40);
    EXPECT_LE(*mx, 40);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsOracle, ::testing::Range(0, 10));

}  // namespace
}  // namespace polyast
