// Microkernel parity suite (ISSUE 9 satellite): the packed SIMD lowering
// of tagged contraction nests must be BIT-exact with the scalar lowering
// — the TU is compiled under -ffp-contract=off and the emitter keeps the
// per-cell stream-ascending accumulation order, so packed-vs-scalar
// differences are exactly 0.0, not merely within tolerance.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exec/backend.hpp"
#include "exec/native_exec.hpp"
#include "flow/presets.hpp"
#include "ir/builder.hpp"
#include "ir/cemit.hpp"
#include "kernels/polybench.hpp"
#include "runtime/parallel.hpp"

namespace polyast::exec {
namespace {

bool haveCompiler() {
  return std::system("command -v cc > /dev/null 2>&1") == 0;
}

std::string freshCacheDir() {
  char tmpl[] = "/tmp/polyast_simd_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "/tmp/polyast_simd_test_fallback";
}

ir::Program transformed(const std::string& kernel,
                        const std::string& pipeline, bool simd) {
  ir::Program p = kernels::buildKernel(kernel);
  flow::PipelineOptions popt;
  popt.ast.simd = simd;
  flow::PassContext ctx;
  return flow::makePipeline(pipeline, popt).run(p, ctx);
}

NativeBackendOptions strictOptions(const std::string& cacheDir) {
  NativeBackendOptions opts;
  opts.cacheDir = cacheDir;
  opts.extraFlags = {"-Wextra", "-Werror"};
  return opts;
}

/// Runs `program` natively and returns the context; asserts the native
/// path actually ran (no interpreter fallback hides a broken TU).
exec::Context runNative(const ir::Program& program,
                        const std::map<std::string, std::int64_t>& params,
                        const std::string& cacheDir,
                        runtime::ThreadPool& pool) {
  NativeBackend native(strictOptions(cacheDir));
  Context ctx = kernels::makeContext(program, params);
  ParallelRunReport rep = native.run(program, ctx, pool);
  EXPECT_EQ(rep.backend, "native") << rep.summary();
  EXPECT_EQ(rep.nativeFallbacks, 0) << rep.summary();
  return ctx;
}

/// Packed vs scalar on the ISSUE's named kernels x both flows at
/// verification scale (two full tiles plus an odd remainder). Kernels
/// whose nests do not match the microkernel contract (syrk's fused
/// beta-scale prologue, every pocc nest) compare scalar-vs-scalar — the
/// forced --simd=off equivalence the satellite asks for.
class PackedVsScalar
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {
};

TEST_P(PackedVsScalar, BitExactAtVerificationScale) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  const auto& [kernel, pipeline] = GetParam();
  static std::string cacheDir = freshCacheDir();
  runtime::ThreadPool pool(4);

  ir::Program simd = transformed(kernel, pipeline, /*simd=*/true);
  ir::Program scalar = transformed(kernel, pipeline, /*simd=*/false);
  std::map<std::string, std::int64_t> params;
  for (const auto& name : simd.params)
    params[name] = name == "TSTEPS" ? 7 : 69;  // 2*tile+5, timeTile+2

  Context simdCtx = runNative(simd, params, cacheDir, pool);
  Context scalarCtx = runNative(scalar, params, cacheDir, pool);
  EXPECT_EQ(simdCtx.maxAbsDiff(scalarCtx), 0.0)
      << kernel << "/" << pipeline
      << ": packed lowering is not bit-exact with scalar";
}

INSTANTIATE_TEST_SUITE_P(
    Contractions, PackedVsScalar,
    ::testing::ValuesIn([] {
      std::vector<std::pair<std::string, std::string>> cases;
      for (const char* k : {"gemm", "2mm", "syrk"})
        for (const char* pipe : {"polyast", "pocc"})
          cases.emplace_back(k, pipe);
      return cases;
    }()),
    [](const auto& info) {
      std::string s = info.param.first + "_" + info.param.second;
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

/// Remainder coverage: extents that are not multiples of the vector
/// blocks (32/8/4) or the tile (32) drive every partial-window shape —
/// scalar lanes only (5), one 8-block plus lanes (13), a full tile plus
/// a 1-wide window (33), and the two-tier split (41).
TEST(SimdMicroKernel, RemainderEdgeSizesStayBitExact) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  std::string cacheDir = freshCacheDir();
  runtime::ThreadPool pool(4);
  ir::Program simd = transformed("gemm", "polyast", true);
  ir::Program scalar = transformed("gemm", "polyast", false);
  ASSERT_TRUE(ir::programHasMicroKernels(simd));
  for (std::int64_t n : {5, 13, 33, 41}) {
    std::map<std::string, std::int64_t> params;
    for (const auto& name : simd.params) params[name] = n;
    Context simdCtx = runNative(simd, params, cacheDir, pool);
    Context scalarCtx = runNative(scalar, params, cacheDir, pool);
    EXPECT_EQ(simdCtx.maxAbsDiff(scalarCtx), 0.0) << "extent " << n;
  }
}

/// Which programs carry tags at all: the polyast contractions with a
/// clean two-deep accumulation nest do; pocc fuses the beta-scale
/// statement into the point-loop body (two children — not a contraction
/// nest) and syrk has the same fused prologue, so they stay scalar; and
/// --simd=off never tags.
TEST(SimdMicroKernel, TaggingMatchesContractionContract) {
  for (const char* k : {"gemm", "2mm", "3mm", "doitgen"})
    EXPECT_TRUE(ir::programHasMicroKernels(transformed(k, "polyast", true)))
        << k;
  EXPECT_FALSE(ir::programHasMicroKernels(transformed("gemm", "pocc", true)));
  EXPECT_FALSE(
      ir::programHasMicroKernels(transformed("syrk", "polyast", true)));
  EXPECT_FALSE(
      ir::programHasMicroKernels(transformed("gemm", "polyast", false)));
}

/// --simd=off (and untagged programs under --simd=on) keep the scalar
/// lowering byte-for-byte: no vector typedef, no microkernel blocks, and
/// the simd-TU request collapses to the scalar TU.
TEST(SimdMicroKernel, SimdOffKeepsScalarLoweringByteForByte) {
  ir::Program off = transformed("gemm", "polyast", false);
  std::string tu = ir::emitNativeKernelTU(off);
  EXPECT_EQ(tu.find("polyast_v4d"), std::string::npos);
  EXPECT_EQ(tu.find("simd microkernel"), std::string::npos);
  ir::NativeTUOptions scalarOpt;
  scalarOpt.simd = false;
  EXPECT_EQ(tu, ir::emitNativeKernelTU(off, scalarOpt));

  // Untagged under simd=on (pocc fuses the prologue): same story.
  ir::Program pocc = transformed("gemm", "pocc", true);
  EXPECT_EQ(ir::emitNativeKernelTU(pocc).find("polyast_v4d"),
            std::string::npos);
}

/// The packed-panel path (lane-strided streamed factor, so vectors
/// cannot load directly from the source array): a synthetic
/// `C[j] += s[k] * B[j][k]` nest — lane j strides B by a full row, so
/// the emitter must pack B into the contiguous panel. Covers both the
/// in-window case and the runtime guard (window wider than the panel
/// falls back to the rolled nest inside the same TU).
TEST(SimdMicroKernel, PackedPanelPathForLaneStridedFactor) {
  if (!haveCompiler()) GTEST_SKIP() << "no C compiler on PATH";
  std::string cacheDir = freshCacheDir();
  runtime::ThreadPool pool(2);

  ir::ProgramBuilder b("rowdot");
  b.param("N", 21).param("K", 13);
  b.array("C", {b.p("N")});
  b.array("s", {b.p("K")});
  b.array("B", {b.p("N"), b.p("K")});
  b.beginLoop("j", 0, b.p("N"));
  b.beginLoop("k", 0, b.p("K"));
  b.stmt("S", "C", {ir::AffExpr::term("j")}, ir::AssignOp::AddAssign,
         ir::arrayRef("s", {ir::AffExpr::term("k")}) *
             ir::arrayRef("B",
                          {ir::AffExpr::term("j"), ir::AffExpr::term("k")}));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  auto outer = p.enclosingLoops()[0][0];
  outer->microKernel = std::make_shared<const ir::MicroKernelTag>(
      ir::MicroKernelTag{"j", "k", 32, 32});
  ASSERT_TRUE(ir::programHasMicroKernels(p));
  EXPECT_NE(ir::emitNativeKernelTU(p).find("packed simd microkernel"),
            std::string::npos);

  // N=21: one 8-lane block + 13 partial-path lanes, all through the
  // panel. N=45 > maxLane=32: the runtime guard takes the rolled nest.
  for (std::int64_t n : {21, 45}) {
    std::map<std::string, std::int64_t> params{{"N", n}, {"K", 13}};
    NativeBackend native(strictOptions(cacheDir));
    EXPECT_TRUE(native.usedSimd() == false);
    Context ctx = kernels::makeContext(p, params);
    Context oracle = kernels::makeContext(p, params);
    ParallelRunReport rep;
    VerifyResult check = native.verify(p, ctx, oracle, pool, &rep);
    EXPECT_TRUE(check.passed()) << "N=" << n;
    EXPECT_EQ(check.maxAbsDiff, 0.0) << "N=" << n;
    EXPECT_EQ(rep.nativeFallbacks, 0) << rep.summary();
    EXPECT_TRUE(native.usedSimd());
  }
}

/// The lane-contiguous (gemm-shaped) nest takes the direct-load path —
/// no panels in the emitted block.
TEST(SimdMicroKernel, ContiguousFactorTakesDirectPath) {
  ir::Program simd = transformed("gemm", "polyast", true);
  std::string tu = ir::emitNativeKernelTU(simd);
  EXPECT_NE(tu.find("direct simd microkernel"), std::string::npos);
  EXPECT_EQ(tu.find("packed simd microkernel"), std::string::npos);
}

}  // namespace
}  // namespace polyast::exec
