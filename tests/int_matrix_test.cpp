#include "support/int_matrix.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace polyast {
namespace {

TEST(IntMatrix, IdentityAndProduct) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix i = IntMatrix::identity(2);
  EXPECT_EQ(a * i, a);
  EXPECT_EQ(i * a, a);
  IntMatrix b{{0, 1}, {1, 0}};
  IntMatrix ab = a * b;
  EXPECT_EQ(ab.at(0, 0), 2);
  EXPECT_EQ(ab.at(0, 1), 1);
  EXPECT_EQ(ab.at(1, 0), 4);
  EXPECT_EQ(ab.at(1, 1), 3);
}

TEST(IntMatrix, ApplyVector) {
  IntMatrix a{{1, 2}, {3, 4}};
  auto v = a.apply({1, 1});
  EXPECT_EQ(v, (std::vector<std::int64_t>{3, 7}));
}

TEST(IntMatrix, DimensionMismatchThrows) {
  IntMatrix a{{1, 2}};
  IntMatrix b{{1, 2}};
  EXPECT_THROW(a * b, Error);
  EXPECT_THROW(a.apply({1, 2, 3}), Error);
}

TEST(IntMatrix, Determinant) {
  EXPECT_EQ((IntMatrix{{2, 0}, {0, 3}}).determinant(), 6);
  EXPECT_EQ((IntMatrix{{0, 1}, {1, 0}}).determinant(), -1);
  EXPECT_EQ((IntMatrix{{1, 2}, {2, 4}}).determinant(), 0);
  EXPECT_EQ((IntMatrix{{2, -1, 0}, {-1, 2, -1}, {0, -1, 2}}).determinant(),
            4);
  // Needs a row swap to find a pivot.
  EXPECT_EQ((IntMatrix{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}}).determinant(), -1);
}

TEST(IntMatrix, InverseUnimodular) {
  IntMatrix skew{{1, 0}, {1, 1}};
  IntMatrix inv = skew.inverseUnimodular();
  EXPECT_EQ(skew * inv, IntMatrix::identity(2));
  EXPECT_EQ(inv * skew, IntMatrix::identity(2));

  IntMatrix perm = IntMatrix::permutation({2, 0, 1});
  IntMatrix pinv = perm.inverseUnimodular();
  EXPECT_EQ(perm * pinv, IntMatrix::identity(3));

  IntMatrix notUni{{2, 0}, {0, 1}};
  EXPECT_THROW(notUni.inverseUnimodular(), Error);
}

TEST(IntMatrix, SignedPermutationCheck) {
  EXPECT_TRUE(IntMatrix::identity(3).isSignedPermutation());
  EXPECT_TRUE((IntMatrix{{0, -1}, {1, 0}}).isSignedPermutation());
  EXPECT_FALSE((IntMatrix{{1, 1}, {0, 1}}).isSignedPermutation());
  EXPECT_FALSE((IntMatrix{{2, 0}, {0, 1}}).isSignedPermutation());
  EXPECT_FALSE((IntMatrix{{1, 0}, {1, 0}}).isSignedPermutation());
}

TEST(IntMatrix, PermutationFactoryValidation) {
  EXPECT_THROW(IntMatrix::permutation({0, 0}), Error);
  EXPECT_THROW(IntMatrix::permutation({0, 2}), Error);
  IntMatrix p = IntMatrix::permutation({1, 0});
  EXPECT_EQ(p.at(0, 1), 1);
  EXPECT_EQ(p.at(1, 0), 1);
}

class UnimodularRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(UnimodularRoundTrip, InverseIsExact) {
  // Generate unimodular matrices as products of elementary operations.
  auto next = [state = static_cast<std::uint64_t>(GetParam() * 7919 + 3)]()
      mutable {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::size_t n = 3;
  IntMatrix m = IntMatrix::identity(n);
  for (int step = 0; step < 6; ++step) {
    IntMatrix e = IntMatrix::identity(n);
    std::size_t r = next() % n, c = next() % n;
    if (r == c) {
      e.at(r, r) = (next() % 2) ? 1 : -1;
    } else {
      e.at(r, c) = static_cast<std::int64_t>(next() % 3) - 1;
    }
    m = m * e;
  }
  ASSERT_TRUE(m.isUnimodular());
  EXPECT_EQ(m * m.inverseUnimodular(), IntMatrix::identity(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnimodularRoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace polyast
