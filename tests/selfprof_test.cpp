// Compile-time self-profiling tests: exact FM counter deltas on a
// hand-counted elimination, the Collector's telescoping invariant
// (residual + sum(rows) == totals per counter), the
// polyast-compile-profile-v1 artifact round-trip through the bundled
// JSON parser, registry mirroring, RSS gauge sanity, and the synthetic
// SCoP generator (determinism, family distinctness, pipeline smoke).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "common/scop_gen.hpp"
#include "flow/presets.hpp"
#include "intset/intset.hpp"
#include "ir/ast.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/selfprof.hpp"
#include "support/error.hpp"

namespace polyast {
namespace {

namespace sp = obs::selfprof;

/// Per-op deltas across a piece of work. Counters are process-global and
/// monotone, so tests always compare snapshots, never absolute values.
sp::Snapshot deltaSince(const sp::Snapshot& base) {
  sp::Snapshot now = sp::snapshot();
  for (int i = 0; i < sp::kOpCount; ++i) now[i] -= base[i];
  return now;
}

std::int64_t at(const sp::Snapshot& s, sp::Op op) {
  return s[static_cast<int>(op)];
}

TEST(SelfProf, OpNamesAreStableAndDistinct) {
  std::map<std::string, int> seen;
  for (sp::Op op : sp::allOps()) ++seen[sp::opName(op)];
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(sp::kOpCount));
  EXPECT_EQ(sp::opName(sp::Op::FmEliminations), std::string("fm.eliminations"));
  EXPECT_EQ(sp::opName(sp::Op::SelFallbacks), std::string("sel.fallbacks"));
}

TEST(SelfProf, FmCountersExactOnHandCountedElimination) {
  // The box {0 <= x <= 5, 0 <= y <= 5}: one isEmpty() runs exactly two
  // eliminations. Eliminating x sees 4 rows and emits 2 (y's bounds pass
  // through untouched; the single lower*upper product 5 >= 0 is pruned as
  // trivially true). Eliminating y sees those 2 rows and emits 0.
  IntSet s({"x", "y"});
  s.addBounds(0, 0, 5);
  s.addBounds(1, 0, 5);
  sp::Snapshot base = sp::snapshot();
  EXPECT_FALSE(s.isEmpty());
  sp::Snapshot d = deltaSince(base);
  EXPECT_EQ(at(d, sp::Op::IntsetEmptyTests), 1);
  EXPECT_EQ(at(d, sp::Op::FmEliminations), 2);
  EXPECT_EQ(at(d, sp::Op::FmConstraintsIn), 6);   // 4 rows, then 2
  EXPECT_EQ(at(d, sp::Op::FmConstraintsOut), 2);  // 2 rows, then 0
  EXPECT_EQ(at(d, sp::Op::FmCapHits), 0);
}

TEST(SelfProf, BoundQueriesAndProjectionsCount) {
  IntSet s({"x", "y"});
  s.addBounds(0, 1, 4);
  s.addBounds(1, 2, 6);
  sp::Snapshot base = sp::snapshot();
  EXPECT_EQ(s.minOf(LinExpr::var(0, 2)), 1);
  EXPECT_EQ(s.maxOf(LinExpr::var(1, 2)), 6);
  IntSet p = s.project({0});
  sp::Snapshot d = deltaSince(base);
  EXPECT_EQ(at(d, sp::Op::IntsetBoundQueries), 2);  // maxOf delegates to minOf
  EXPECT_EQ(at(d, sp::Op::IntsetProjects), 1);
  EXPECT_EQ(p.numVars(), 1u);
}

TEST(SelfProf, CollectorTelescopingIsExact) {
  sp::Collector collector;
  auto work = [](std::int64_t lo, std::int64_t hi) {
    IntSet s({"x", "y"});
    s.addBounds(0, lo, hi);
    s.addBounds(1, lo, hi);
    (void)s.isEmpty();
  };
  collector.beginScop();
  work(0, 5);
  collector.endScop("a", 1, 1, 0.5);
  work(0, 7);  // outside any bracket: must land in the residual
  collector.beginScop();
  work(0, 5);
  work(0, 5);
  collector.endScop("b", 2, 2, 1.0);

  sp::CompileProfile profile = collector.finish("test-pipeline", "gen-note");
  EXPECT_EQ(profile.pipeline, "test-pipeline");
  EXPECT_EQ(profile.generator, "gen-note");
  ASSERT_EQ(profile.scops.size(), 2u);
  EXPECT_EQ(profile.scops[0].scop, "a");
  EXPECT_EQ(profile.scops[1].scop, "b");

  // Row "b" did exactly twice row "a"'s work, and the telescoping
  // invariant holds exactly for every counter.
  for (int i = 0; i < sp::kOpCount; ++i) {
    const auto& [name, totalV] = profile.totals[i];
    EXPECT_EQ(profile.scops[0].counters[i].first, name);
    EXPECT_EQ(profile.scops[1].counters[i].second,
              2 * profile.scops[0].counters[i].second)
        << name;
    EXPECT_EQ(profile.residual[i].second + profile.scops[0].counters[i].second +
                  profile.scops[1].counters[i].second,
              totalV)
        << name;
  }
  // The out-of-bracket isEmpty() is visible in the residual.
  EXPECT_GE(profile.residual[static_cast<int>(sp::Op::IntsetEmptyTests)].second,
            1);
}

TEST(SelfProf, EndScopWithoutBeginThrowsAndAbandonDropsRow) {
  sp::Collector collector;
  EXPECT_THROW(collector.endScop("x", 1, 1, 0.0), Error);
  collector.beginScop();
  collector.abandonScop();
  EXPECT_THROW(collector.endScop("x", 1, 1, 0.0), Error);
  EXPECT_TRUE(collector.finish("p").scops.empty());
}

TEST(SelfProf, ArtifactRoundTripsThroughJsonParser) {
  sp::Collector collector;
  collector.beginScop();
  IntSet s({"x"});
  s.addBounds(0, 0, 3);
  (void)s.isEmpty();
  collector.endScop("only", 3, 2, 1.25);
  sp::CompileProfile profile = collector.finish("polyast", "unit-test");

  std::ostringstream out;
  sp::writeCompileProfile(out, profile);
  obs::JsonValue root = obs::parseJson(out.str());
  ASSERT_TRUE(root.isObject());
  EXPECT_EQ(root.find("schema")->text, "polyast-compile-profile-v1");
  EXPECT_EQ(root.find("pipeline")->text, "polyast");
  EXPECT_EQ(root.find("generator")->text, "unit-test");
  const obs::JsonValue* scops = root.find("scops");
  ASSERT_TRUE(scops && scops->isArray());
  ASSERT_EQ(scops->items.size(), 1u);
  const obs::JsonValue& row = scops->items[0];
  EXPECT_EQ(row.find("scop")->text, "only");
  EXPECT_EQ(row.find("statements")->number, 3);
  EXPECT_EQ(row.find("loops")->number, 2);
  EXPECT_DOUBLE_EQ(row.find("compile_ms")->number, 1.25);
  // Every counter survives with its exact value, and the JSON totals
  // telescope just like the in-memory profile.
  const obs::JsonValue* rowCounters = row.find("counters");
  const obs::JsonValue* residual = root.find("residual")->find("counters");
  const obs::JsonValue* totals = root.find("totals")->find("counters");
  ASSERT_TRUE(rowCounters && residual && totals);
  for (int i = 0; i < sp::kOpCount; ++i) {
    const auto& [name, v] = profile.scops[0].counters[i];
    const obs::JsonValue* rv = rowCounters->find(name);
    ASSERT_TRUE(rv) << name;
    EXPECT_EQ(rv->number, static_cast<double>(v)) << name;
    EXPECT_EQ(residual->find(name)->number + rv->number,
              totals->find(name)->number)
        << name;
  }
}

TEST(SelfProf, MirrorToRegistryAddsDeltasIdempotently) {
  obs::Registry reg;
  sp::mirrorToRegistry(reg);
  const std::string key = std::string("selfprof.") +
                          sp::opName(sp::Op::IntsetEmptyTests);
  EXPECT_EQ(reg.counter(key).value(), sp::value(sp::Op::IntsetEmptyTests));
  // A second mirror with no new work adds nothing...
  sp::mirrorToRegistry(reg);
  EXPECT_EQ(reg.counter(key).value(), sp::value(sp::Op::IntsetEmptyTests));
  // ...and after more work, only the delta.
  IntSet s({"x"});
  s.addBounds(0, 0, 1);
  (void)s.isEmpty();
  sp::mirrorToRegistry(reg);
  EXPECT_EQ(reg.counter(key).value(), sp::value(sp::Op::IntsetEmptyTests));
}

TEST(SelfProf, RssGaugesAreSaneOnLinux) {
  std::int64_t current = sp::currentRssKb();
  std::int64_t peak = sp::peakRssKb();
  EXPECT_GE(current, 0);
  EXPECT_GE(peak, 0);
  // Where procfs delivers both, the high-water mark bounds the current.
  if (current > 0 && peak > 0) {
    EXPECT_GE(peak, current);
  }
}

TEST(ScopGen, SameSeedIsByteIdentical) {
  for (const std::string& family : scopgen::families()) {
    scopgen::GenOptions opt;
    opt.family = family;
    opt.size = 4;
    opt.seed = 1234;
    std::string a = ir::printProgram(scopgen::generate(opt));
    std::string b = ir::printProgram(scopgen::generate(opt));
    EXPECT_EQ(a, b) << family;
    EXPECT_FALSE(a.empty()) << family;
  }
}

TEST(ScopGen, SeedAndFamilyChangeTheProgram) {
  scopgen::GenOptions opt;
  opt.family = "dense";
  opt.size = 6;
  opt.seed = 1;
  std::string base = ir::printProgram(scopgen::generate(opt));
  opt.seed = 2;
  EXPECT_NE(ir::printProgram(scopgen::generate(opt)), base);
  scopgen::GenOptions deep = opt;
  deep.family = "deep";
  scopgen::GenOptions wide = opt;
  wide.family = "wide";
  EXPECT_NE(ir::printProgram(scopgen::generate(deep)),
            ir::printProgram(scopgen::generate(wide)));
}

TEST(ScopGen, LabelRecordsProvenanceAndBadOptionsThrow) {
  scopgen::GenOptions opt;
  opt.family = "wide";
  opt.size = 3;
  opt.seed = 9;
  opt.extent = 16;
  EXPECT_EQ(scopgen::label(opt), "wide(size=3,seed=9,extent=16)");
  opt.family = "nope";
  EXPECT_THROW(scopgen::generate(opt), Error);
  opt.family = "deep";
  opt.size = 0;
  EXPECT_THROW(scopgen::generate(opt), Error);
}

TEST(ScopGen, EveryFamilyCompilesThroughThePipeline) {
  for (const std::string& family : scopgen::families()) {
    scopgen::GenOptions opt;
    opt.family = family;
    opt.size = 3;
    ir::Program program = scopgen::generate(opt);
    flow::PipelineOptions options;
    flow::PassPipeline pipe = flow::makePipeline("polyast", options);
    flow::PassContext ctx;
    sp::Snapshot base = sp::snapshot();
    EXPECT_NO_THROW(pipe.run(program, ctx)) << family;
    sp::Snapshot d = deltaSince(base);
    // Compiling a synthetic SCoP must exercise the instrumented hot
    // paths: dependence tests ran, and every test has one outcome.
    EXPECT_GT(at(d, sp::Op::DepTests), 0) << family;
    EXPECT_EQ(at(d, sp::Op::DepProven) + at(d, sp::Op::DepDisproven),
              at(d, sp::Op::DepTests))
        << family;
  }
}

}  // namespace
}  // namespace polyast
