#include "runtime/parallel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace polyast::runtime {
namespace {

TEST(ThreadPool, RunsOnAllThreads) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h = 0;
  pool.runOnAll([&](unsigned tid) { hits[tid]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable across invocations.
  pool.runOnAll([&](unsigned tid) { hits[tid]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, SingleThreadDegenerate) {
  ThreadPool pool(1);
  int calls = 0;
  pool.runOnAll([&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(100);
  for (auto& t : touched) t = 0;
  parallelFor(pool, 5, 95, [&](std::int64_t i) { touched[i]++; });
  for (std::int64_t i = 0; i < 100; ++i)
    EXPECT_EQ(touched[i].load(), (i >= 5 && i < 95) ? 1 : 0) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallelFor(pool, 10, 10, [&](std::int64_t) { ++calls; });
  parallelFor(pool, 10, 5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForBlocked, ChunksPartitionRange) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallelForBlocked(pool, 0, 103, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> g(m);
    chunks.push_back({lo, hi});
  });
  std::sort(chunks.begin(), chunks.end());
  std::int64_t expectNext = 0;
  for (auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expectNext);
    EXPECT_GT(hi, lo);
    expectNext = hi;
  }
  EXPECT_EQ(expectNext, 103);
}

TEST(ParallelReduce, MatchesSequentialSum) {
  ThreadPool pool(4);
  std::int64_t n = 1000;
  std::vector<double> data(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    data[static_cast<std::size_t>(i)] = 0.25 * static_cast<double>(i % 17);
  // Array reduction: hist[i % 8] += data[i].
  std::vector<double> hist(8, 1.0);  // pre-existing values must be kept
  std::vector<double> want = hist;
  for (std::int64_t i = 0; i < n; ++i)
    want[static_cast<std::size_t>(i % 8)] += data[static_cast<std::size_t>(i)];
  parallelReduce(pool, 0, n, hist.data(), hist.size(),
                 [&](double* priv, std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t i = lo; i < hi; ++i)
                     priv[i % 8] += data[static_cast<std::size_t>(i)];
                 });
  for (std::size_t k = 0; k < 8; ++k) EXPECT_NEAR(hist[k], want[k], 1e-9);
}

/// Pipeline correctness: every cell must observe the completed values of
/// its north and west neighbours.
TEST(Pipeline2D, RespectsCellDependences) {
  ThreadPool pool(4);
  std::int64_t R = 37, C = 29;
  std::vector<std::int64_t> grid(static_cast<std::size_t>(R * C), 0);
  auto at = [&](std::int64_t r, std::int64_t c) -> std::int64_t& {
    return grid[static_cast<std::size_t>(r * C + c)];
  };
  pipeline2D(pool, R, C, [&](std::int64_t r, std::int64_t c) {
    std::int64_t north = r > 0 ? at(r - 1, c) : 0;
    std::int64_t west = c > 0 ? at(r, c - 1) : 0;
    at(r, c) = std::max(north, west) + 1;
  });
  // The recurrence computes r + c + 1 when dependences are respected.
  for (std::int64_t r = 0; r < R; ++r)
    for (std::int64_t c = 0; c < C; ++c)
      ASSERT_EQ(at(r, c), r + c + 1) << r << "," << c;
}

TEST(Wavefront2D, ComputesSameRecurrence) {
  ThreadPool pool(4);
  std::int64_t R = 23, C = 31;
  std::vector<std::int64_t> grid(static_cast<std::size_t>(R * C), 0);
  auto at = [&](std::int64_t r, std::int64_t c) -> std::int64_t& {
    return grid[static_cast<std::size_t>(r * C + c)];
  };
  SyncStats stats = wavefront2D(pool, R, C, [&](std::int64_t r,
                                                std::int64_t c) {
    std::int64_t north = r > 0 ? at(r - 1, c) : 0;
    std::int64_t west = c > 0 ? at(r, c - 1) : 0;
    at(r, c) = std::max(north, west) + 1;
  });
  for (std::int64_t r = 0; r < R; ++r)
    for (std::int64_t c = 0; c < C; ++c)
      ASSERT_EQ(at(r, c), r + c + 1);
  // One barrier per diagonal: R + C - 1 of them (Fig. 6's all-to-all
  // barriers).
  EXPECT_EQ(stats.barriers, static_cast<std::uint64_t>(R + C - 1));
}

TEST(Fig6, PipelineUsesNoBarriers) {
  ThreadPool pool(4);
  auto noop = [](std::int64_t, std::int64_t) {};
  SyncStats p2p = pipeline2D(pool, 16, 16, noop);
  SyncStats wf = wavefront2D(pool, 16, 16, noop);
  EXPECT_EQ(p2p.barriers, 0u);
  EXPECT_EQ(wf.barriers, 31u);
  // The wavefront's waiting happens inside the barrier; only the
  // point-to-point executors spin.
  EXPECT_EQ(wf.spinIterations, 0u);
}

TEST(SpinBackoff, BoundedSpinThenYield) {
  SpinBackoff backoff(/*spinLimit=*/4);
  for (int i = 0; i < 10; ++i) backoff.pause();  // 4 relaxes + 6 yields
  EXPECT_EQ(backoff.iterations(), 10u);
  backoff.reset();  // progress observed: spin phase re-arms
  backoff.pause();
  EXPECT_EQ(backoff.iterations(), 11u);
}

TEST(SpinBackoff, PipelineCountsSpinIterations) {
  ThreadPool pool(4);
  if (pool.threadCount() < 2) GTEST_SKIP() << "needs a real waiter";
  // A tall grid with slow upper rows forces row r to wait on row r-1, so
  // the backoff loop must actually run and be accounted.
  std::atomic<std::uint64_t> sink{0};
  SyncStats stats =
      pipeline2D(pool, 8, 64, [&](std::int64_t r, std::int64_t) {
        volatile std::uint64_t acc = 0;
        for (std::int64_t i = 0; i < (r == 0 ? 20000 : 10); ++i) acc += i;
        sink.fetch_add(acc, std::memory_order_relaxed);
      });
  // A wait can resolve between its detection and the first backoff step,
  // so per-wait bounds would be racy; but with any waits at all, some
  // spinning must have been recorded.
  if (stats.pointToPointWaits > 0) EXPECT_GT(stats.spinIterations, 0u);
}

TEST(Pipeline2D, DegenerateShapes) {
  ThreadPool pool(2);
  int cells = 0;
  std::mutex m;
  auto count = [&](std::int64_t, std::int64_t) {
    std::lock_guard<std::mutex> g(m);
    ++cells;
  };
  pipeline2D(pool, 1, 10, count);
  EXPECT_EQ(cells, 10);
  cells = 0;
  pipeline2D(pool, 10, 1, count);
  EXPECT_EQ(cells, 10);
  cells = 0;
  pipeline2D(pool, 0, 10, count);
  EXPECT_EQ(cells, 0);
}

TEST(Pipeline3D, RespectsAllThreePredecessors) {
  ThreadPool pool(4);
  std::int64_t P = 9, R = 11, C = 13;
  std::vector<std::int64_t> grid(static_cast<std::size_t>(P * R * C), 0);
  auto at = [&](std::int64_t p, std::int64_t r, std::int64_t c)
      -> std::int64_t& {
    return grid[static_cast<std::size_t>((p * R + r) * C + c)];
  };
  pipeline3D(pool, P, R, C, [&](std::int64_t p, std::int64_t r,
                                std::int64_t c) {
    std::int64_t up = p > 0 ? at(p - 1, r, c) : 0;
    std::int64_t north = r > 0 ? at(p, r - 1, c) : 0;
    std::int64_t west = c > 0 ? at(p, r, c - 1) : 0;
    at(p, r, c) = std::max({up, north, west}) + 1;
  });
  for (std::int64_t p = 0; p < P; ++p)
    for (std::int64_t r = 0; r < R; ++r)
      for (std::int64_t c = 0; c < C; ++c)
        ASSERT_EQ(at(p, r, c), p + r + c + 1);
}

TEST(Pipeline3D, DegenerateShapes) {
  ThreadPool pool(2);
  std::atomic<int> cells{0};
  auto count = [&](std::int64_t, std::int64_t, std::int64_t) { ++cells; };
  pipeline3D(pool, 1, 1, 50, count);
  EXPECT_EQ(cells.load(), 50);
  cells = 0;
  pipeline3D(pool, 0, 5, 5, count);
  EXPECT_EQ(cells.load(), 0);
  cells = 0;
  pipeline3D(pool, 3, 1, 1, count);
  EXPECT_EQ(cells.load(), 3);
}

/// Stress the pipeline with many shapes and threads (property test).
class PipelineShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PipelineShapes, RecurrenceHolds) {
  auto [threads, R, C] = GetParam();
  ThreadPool pool(static_cast<unsigned>(threads));
  std::vector<std::int64_t> grid(static_cast<std::size_t>(R * C), 0);
  auto at = [&](std::int64_t r, std::int64_t c) -> std::int64_t& {
    return grid[static_cast<std::size_t>(r * C + c)];
  };
  pipeline2D(pool, R, C, [&](std::int64_t r, std::int64_t c) {
    std::int64_t north = r > 0 ? at(r - 1, c) : 0;
    std::int64_t west = c > 0 ? at(r, c - 1) : 0;
    at(r, c) = std::max(north, west) + 1;
  });
  for (std::int64_t r = 0; r < R; ++r)
    for (std::int64_t c = 0; c < C; ++c)
      ASSERT_EQ(at(r, c), r + c + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineShapes,
    ::testing::Values(std::make_tuple(1, 8, 8), std::make_tuple(2, 5, 40),
                      std::make_tuple(3, 40, 5), std::make_tuple(4, 64, 64),
                      std::make_tuple(8, 33, 17)));

TEST(ThreadPool, CurrentTidMatchesWorkerIdentity) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> bad(4);
  for (auto& b : bad) b = 0;
  pool.runOnAll([&](unsigned tid) {
    if (ThreadPool::currentTid() != tid) bad[tid]++;
  });
  for (auto& b : bad) EXPECT_EQ(b.load(), 0);
  // The calling thread is pinned to tid 0 during runOnAll; outside it the
  // binding is restored (0 for a thread that never joined a pool).
  EXPECT_EQ(ThreadPool::currentTid(), 0u);
}

TEST(ParallelForBlocked, GuidedCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(200);
  for (auto& t : touched) t = 0;
  ForOptions opts;
  opts.schedule = Schedule::Guided;
  opts.minBlock = 3;
  parallelForBlocked(
      pool, 7, 193,
      [&](unsigned tid, std::int64_t lo, std::int64_t hi) {
        EXPECT_LT(tid, pool.threadCount());
        EXPECT_EQ(ThreadPool::currentTid(), tid);
        for (std::int64_t i = lo; i < hi; ++i)
          touched[static_cast<std::size_t>(i)]++;
      },
      opts);
  for (std::int64_t i = 0; i < 200; ++i)
    EXPECT_EQ(touched[static_cast<std::size_t>(i)].load(),
              (i >= 7 && i < 193) ? 1 : 0)
        << i;
}

TEST(ParallelForBlocked, GuidedShrinksBlocksAndHonorsFloor) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::int64_t> sizes;
  ForOptions opts;
  opts.schedule = Schedule::Guided;
  opts.minBlock = 4;
  parallelForBlocked(
      pool, 0, 1000,
      [&](unsigned, std::int64_t lo, std::int64_t hi) {
        std::lock_guard<std::mutex> g(m);
        sizes.push_back(hi - lo);
      },
      opts);
  std::int64_t total = 0;
  for (std::int64_t s : sizes) {
    total += s;
    EXPECT_GE(s, 1);
  }
  EXPECT_EQ(total, 1000);
  // Guided claims start at remaining/(2*threads) = 125 and decay toward
  // the floor, so there must be more chunks than a static split but each
  // no smaller than minBlock except possibly the final remainder.
  EXPECT_GT(sizes.size(), 4u);
  std::int64_t subFloor = 0;
  for (std::int64_t s : sizes)
    if (s < 4) ++subFloor;
  EXPECT_LE(subFloor, 1);
}

TEST(ParallelForBlocked, StaticTidOverloadPartitionsRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(64);
  for (auto& t : touched) t = 0;
  parallelForBlocked(
      pool, 0, 64,
      [&](unsigned tid, std::int64_t lo, std::int64_t hi) {
        EXPECT_EQ(ThreadPool::currentTid(), tid);
        for (std::int64_t i = lo; i < hi; ++i)
          touched[static_cast<std::size_t>(i)]++;
      },
      ForOptions{});
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelReduce, MultiTargetMatchesSequential) {
  ThreadPool pool(4);
  const std::int64_t n = 500;
  std::vector<double> a(8, 0.5), b(5, 0.25);
  std::vector<double> wantA = a, wantB = b;
  auto fa = [](std::int64_t i) { return 0.125 * static_cast<double>(i % 11); };
  auto fb = [](std::int64_t i) { return 0.25 * static_cast<double>(i % 7); };
  for (std::int64_t i = 0; i < n; ++i) {
    wantA[static_cast<std::size_t>(i % 8)] += fa(i);
    wantB[static_cast<std::size_t>(i % 5)] -= fb(i);
  }
  parallelReduce(
      pool, 0, n,
      {{a.data(), a.size()}, {b.data(), b.size()}},
      [&](unsigned tid, const std::vector<double*>& priv, std::int64_t lo,
          std::int64_t hi) {
        EXPECT_EQ(ThreadPool::currentTid(), tid);
        ASSERT_EQ(priv.size(), 2u);
        for (std::int64_t i = lo; i < hi; ++i) {
          priv[0][i % 8] += fa(i);
          priv[1][i % 5] -= fb(i);
        }
      });
  for (std::size_t k = 0; k < 8; ++k) EXPECT_NEAR(a[k], wantA[k], 1e-9);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_NEAR(b[k], wantB[k], 1e-9);
}

/// Runs pipelineDynamic2D over ragged rows in *value space* (row r covers
/// values [rowLo[r], rowLo[r] + rowCols[r])) and counts ordering
/// violations: a cell observing an incomplete previous-row cell of value
/// <= its own, or an incomplete left neighbour. This is exactly the
/// componentwise non-negative dependence pattern the executor maps onto
/// the primitive. Run under -DPOLYAST_SANITIZE=thread to also check the
/// synchronization itself for data races.
int dynamicOrderViolations(ThreadPool& pool,
                           const std::vector<std::int64_t>& rowLo,
                           const std::vector<std::int64_t>& rowCols) {
  std::vector<std::size_t> rowBase(rowCols.size() + 1, 0);
  for (std::size_t r = 0; r < rowCols.size(); ++r)
    rowBase[r + 1] = rowBase[r] + static_cast<std::size_t>(rowCols[r]);
  std::vector<std::atomic<int>> done(rowBase.back());
  for (auto& d : done) d = 0;
  std::atomic<int> violations{0};
  pipelineDynamic2D(
      pool, rowCols,
      [&](std::int64_t r, std::int64_t c) {
        return rowLo[static_cast<std::size_t>(r)] + c -
               rowLo[static_cast<std::size_t>(r - 1)] + 1;
      },
      [&](std::int64_t r, std::int64_t c) {
        const std::size_t ur = static_cast<std::size_t>(r);
        if (r > 0 && rowCols[ur - 1] > 0) {
          const std::int64_t j = rowLo[ur] + c;
          const std::int64_t prev = std::min<std::int64_t>(
              rowCols[ur - 1],
              std::max<std::int64_t>(0, j - rowLo[ur - 1] + 1));
          for (std::int64_t k = 0; k < prev; ++k)
            if (!done[rowBase[ur - 1] + static_cast<std::size_t>(k)].load())
              ++violations;
        }
        if (c > 0 &&
            !done[rowBase[ur] + static_cast<std::size_t>(c) - 1].load())
          ++violations;
        done[rowBase[ur] + static_cast<std::size_t>(c)].store(1);
      });
  int unfinished = 0;
  for (auto& d : done)
    if (!d.load()) ++unfinished;
  EXPECT_EQ(unfinished, 0);
  return violations.load();
}

TEST(StressPipelineDynamic2D, GrowingTriangle) {
  ThreadPool pool(4);
  const std::int64_t R = 24;
  std::vector<std::int64_t> rowLo(R, 0), rowCols(R);
  for (std::int64_t r = 0; r < R; ++r)
    rowCols[static_cast<std::size_t>(r)] = r + 1;
  EXPECT_EQ(dynamicOrderViolations(pool, rowLo, rowCols), 0);
}

TEST(StressPipelineDynamic2D, ShrinkingTriangleWithShiftingOrigin) {
  ThreadPool pool(4);
  const std::int64_t R = 24;
  std::vector<std::int64_t> rowLo(R), rowCols(R);
  for (std::int64_t r = 0; r < R; ++r) {
    rowLo[static_cast<std::size_t>(r)] = r;
    rowCols[static_cast<std::size_t>(r)] = R - r;
  }
  EXPECT_EQ(dynamicOrderViolations(pool, rowLo, rowCols), 0);
}

TEST(StressPipelineDynamic2D, EmptyEdgeRows) {
  ThreadPool pool(3);
  std::vector<std::int64_t> rowLo{0, 0, 1, 1, 2, 0};
  std::vector<std::int64_t> rowCols{0, 0, 4, 7, 5, 0};
  EXPECT_EQ(dynamicOrderViolations(pool, rowLo, rowCols), 0);
}

TEST(StressPipelineDynamic2D, ThreadsExceedRows) {
  ThreadPool pool(8);
  std::vector<std::int64_t> rowLo{0, 1, 2};
  std::vector<std::int64_t> rowCols{30, 28, 26};
  EXPECT_EQ(dynamicOrderViolations(pool, rowLo, rowCols), 0);
}

TEST(StressPipelineDynamic2D, SingleThreadPool) {
  ThreadPool pool(1);
  const std::int64_t R = 12;
  std::vector<std::int64_t> rowLo(R, 0), rowCols(R);
  for (std::int64_t r = 0; r < R; ++r)
    rowCols[static_cast<std::size_t>(r)] = r + 1;
  EXPECT_EQ(dynamicOrderViolations(pool, rowLo, rowCols), 0);
}

TEST(StressPipelineDynamic2D, DegenerateShapes) {
  ThreadPool pool(2);
  std::atomic<int> cells{0};
  auto need = [](std::int64_t, std::int64_t c) { return c + 1; };
  auto count = [&](std::int64_t, std::int64_t) { ++cells; };
  pipelineDynamic2D(pool, {}, need, count);
  EXPECT_EQ(cells.load(), 0);
  pipelineDynamic2D(pool, {0, 0, 0}, need, count);
  EXPECT_EQ(cells.load(), 0);
  pipelineDynamic2D(pool, {5}, need, count);
  EXPECT_EQ(cells.load(), 5);
}

TEST(StressPipeline3D, UnbalancedCellWorkKeepsOrder) {
  ThreadPool pool(4);
  const std::int64_t P = 6, R = 7, C = 8;
  std::vector<std::atomic<int>> done(static_cast<std::size_t>(P * R * C));
  for (auto& d : done) d = 0;
  auto idx = [&](std::int64_t p, std::int64_t r, std::int64_t c) {
    return static_cast<std::size_t>((p * R + r) * C + c);
  };
  std::atomic<int> violations{0};
  pipeline3D(pool, P, R, C,
             [&](std::int64_t p, std::int64_t r, std::int64_t c) {
               // Skewed per-cell work to force real waiting on all axes.
               volatile std::int64_t acc = 0;
               for (std::int64_t i = 0; i < ((p + 2 * r + 3 * c) % 5) * 400;
                    ++i)
                 acc += i;
               if (p > 0 && !done[idx(p - 1, r, c)].load()) ++violations;
               if (r > 0 && !done[idx(p, r - 1, c)].load()) ++violations;
               if (c > 0 && !done[idx(p, r, c - 1)].load()) ++violations;
               done[idx(p, r, c)].store(1);
             });
  EXPECT_EQ(violations.load(), 0);
  for (auto& d : done) EXPECT_EQ(d.load(), 1);
}

TEST(Pipeline3D, WaitHistogramCountsEpisodesNotPauses) {
  ThreadPool pool(4);
  if (pool.threadCount() < 2) GTEST_SKIP() << "needs a real waiter";
  // Slow first plane: later planes must wait. Episode accounting means
  // the waits counter equals the number of observed wait *durations*, not
  // the (much larger) number of backoff pauses.
  std::atomic<std::uint64_t> sink{0};
  SyncStats stats = pipeline3D(
      pool, 4, 4, 16, [&](std::int64_t p, std::int64_t, std::int64_t) {
        volatile std::uint64_t acc = 0;
        for (std::int64_t i = 0; i < (p == 0 ? 20000 : 10); ++i) acc += i;
        sink.fetch_add(acc, std::memory_order_relaxed);
      });
  if (stats.pointToPointWaits > 0) {
    EXPECT_GT(stats.spinIterations, 0u);
    EXPECT_LE(stats.pointToPointWaits, stats.spinIterations);
  }
}

}  // namespace
}  // namespace polyast::runtime
