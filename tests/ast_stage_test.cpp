#include "transform/ast_stage.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "test_util.hpp"

namespace polyast::transform {
namespace {

using ir::AffExpr;
using ir::ParallelKind;
using testutil::expectSameSemantics;

AffExpr v(const std::string& s) { return AffExpr::term(s); }

ir::Program seidelLike() {
  // for t: for i: for j: A[i][j] = (A[i-1][j] + A[i][j-1] + A[i][j+1] +
  //                                 A[i+1][j]) / 4
  ir::ProgramBuilder b("seidel-like");
  b.param("T", 3).param("N", 12);
  b.array("A", {b.p("N"), b.p("N")});
  b.beginLoop("t", 0, b.p("T"));
  b.beginLoop("i", 1, b.p("N") - AffExpr(1));
  b.beginLoop("j", 1, b.p("N") - AffExpr(1));
  b.stmt("S", "A", {v("i"), v("j")}, ir::AssignOp::Set,
         (ir::arrayRef("A", {v("i") - AffExpr(1), v("j")}) +
          ir::arrayRef("A", {v("i"), v("j") - AffExpr(1)}) +
          ir::arrayRef("A", {v("i"), v("j") + AffExpr(1)}) +
          ir::arrayRef("A", {v("i") + AffExpr(1), v("j")})) /
             ir::floatLit(4.0));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

std::vector<std::shared_ptr<ir::Loop>> loopsOf(const ir::Program& p,
                                               int stmtId = 0) {
  return p.enclosingLoops()[stmtId];
}

TEST(Skewing, SeidelTimeSpaceSkew) {
  ir::Program p = seidelLike();
  ir::Program q = p.deepCopy();
  AstOptions opt;
  int skews = skewForTilability(q, opt);
  EXPECT_GE(skews, 1);  // space loops need skewing against time
  expectSameSemantics(p, q, {{"T", 2}, {"N", 8}});
  // After skewing, the inner loop bounds depend on the outer iterators.
  auto loops = loopsOf(q);
  ASSERT_EQ(loops.size(), 3u);
  bool dependsOnOuter = false;
  for (const auto& part : loops[2]->lower.parts)
    if (part.coeff(loops[0]->iter) != 0 || part.coeff(loops[1]->iter) != 0)
      dependsOnOuter = true;
  EXPECT_TRUE(dependsOnOuter) << ir::printProgram(q);
}

TEST(Skewing, NoSkewNeededForGemm) {
  ir::Program p = kernels::buildKernel("gemm");
  AstOptions opt;
  EXPECT_EQ(skewForTilability(p, opt), 0);
}

TEST(Parallelism, GemmMarks) {
  ir::Program p = kernels::buildKernel("gemm");
  detectParallelism(p, {}, /*outermostOnly=*/false);
  auto loops = loopsOf(p, 1);  // S2's nest: i, j, k
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[0]->parallel, ParallelKind::Doall);
  EXPECT_EQ(loops[1]->parallel, ParallelKind::Doall);
  EXPECT_EQ(loops[2]->parallel, ParallelKind::Reduction);
}

TEST(Parallelism, OutermostOnlyClearsInner) {
  ir::Program p = kernels::buildKernel("gemm");
  detectParallelism(p, {});
  auto loops = loopsOf(p, 1);
  EXPECT_EQ(loops[0]->parallel, ParallelKind::Doall);
  EXPECT_EQ(loops[1]->parallel, ParallelKind::None);
  EXPECT_EQ(loops[2]->parallel, ParallelKind::None);
}

TEST(Parallelism, ReductionArraySum) {
  // S[j] += alpha * X[i][j] over i: outer i loop is reduction-parallel
  // (Fig. 5 middle example).
  ir::ProgramBuilder b("colsum");
  b.param("N", 10);
  b.array("S", {b.p("N")});
  b.array("X", {b.p("N"), b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.beginLoop("j", 0, b.p("N"));
  b.stmt("R", "S", {v("j")}, ir::AssignOp::AddAssign,
         ir::arrayRef("X", {v("i"), v("j")}));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  detectParallelism(p, {}, false);
  auto loops = loopsOf(p);
  EXPECT_EQ(loops[0]->parallel, ParallelKind::Reduction);
  EXPECT_EQ(loops[1]->parallel, ParallelKind::Doall);
}

TEST(Parallelism, ReductionsDisabledTreatedSerial) {
  ir::Program p = kernels::buildKernel("gemm");
  AstOptions opt;
  opt.recognizeReductions = false;
  detectParallelism(p, opt, false);
  auto loops = loopsOf(p, 1);
  EXPECT_EQ(loops[2]->parallel, ParallelKind::None);
}

TEST(Parallelism, PipelineOnSkewedStencil) {
  // Fig. 5 bottom example: C[i][j] = f(C[i-1][j], C[i][j], C[i+1][j]);
  // the i loop is pipeline-parallel with the inner j loop (after the j
  // dimension is independent).
  ir::ProgramBuilder b("pipe");
  b.param("N", 12);
  b.array("C", {b.p("N"), b.p("N")});
  b.beginLoop("i", 1, b.p("N") - AffExpr(1));
  b.beginLoop("j", 1, b.p("N") - AffExpr(1));
  b.stmt("S", "C", {v("i"), v("j")}, ir::AssignOp::Set,
         ir::floatLit(0.33) *
             (ir::arrayRef("C", {v("i") - AffExpr(1), v("j")}) +
              ir::arrayRef("C", {v("i"), v("j")}) +
              ir::arrayRef("C", {v("i"), v("j") - AffExpr(1)})));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  detectParallelism(p, {}, false);
  auto loops = loopsOf(p);
  EXPECT_EQ(loops[0]->parallel, ParallelKind::Pipeline)
      << ir::printProgram(p);
}

TEST(Parallelism, PipelineDisabledFallsBackToNone) {
  ir::Program p = seidelLike();
  skewForTilability(p, {});
  AstOptions opt;
  opt.allowPipeline = false;
  detectParallelism(p, opt, false);
  for (const auto& l : loopsOf(p)) {
    EXPECT_NE(l->parallel, ParallelKind::Pipeline);
    EXPECT_NE(l->parallel, ParallelKind::ReductionPipeline);
  }
}

TEST(Tiling, GemmInnerBandTiled) {
  ir::Program p = kernels::buildKernel("gemm");
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.tileSize = 4;
  detectParallelism(q, opt);
  int bands = tileForLocality(q, opt);
  EXPECT_GE(bands, 1);
  expectSameSemantics(p, q, {{"NI", 9}, {"NJ", 10}, {"NK", 7}});
  // Tile loops exist and are marked.
  bool sawTile = false;
  for (const auto& l : loopsOf(q, 1))
    if (l->isTileLoop) sawTile = true;
  EXPECT_TRUE(sawTile) << ir::printProgram(q);
}

TEST(Tiling, NonDividingSizesStayCorrect) {
  ir::Program p = kernels::buildKernel("doitgen");
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.tileSize = 5;  // does not divide 7/9
  detectParallelism(q, opt);
  tileForLocality(q, opt);
  expectSameSemantics(p, q, {{"NR", 7}, {"NQ", 9}, {"NP", 6}});
}

TEST(Tiling, SkewedStencilGetsTimeTiling) {
  ir::Program p = seidelLike();
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.tileSize = 4;
  opt.timeTileSize = 2;
  skewForTilability(q, opt);
  detectParallelism(q, opt);
  int bands = tileForLocality(q, opt);
  EXPECT_GE(bands, 1) << ir::printProgram(q);
  expectSameSemantics(p, q, {{"T", 3}, {"N", 9}});
}

TEST(Tiling, TriangularBoundsNotTiled) {
  // trisolv's triangular j<i loop cannot be rectangularly tiled with i.
  ir::Program p = kernels::buildKernel("trisolv");
  AstOptions opt;
  detectParallelism(p, opt);
  int bands = tileForLocality(p, opt);
  EXPECT_EQ(bands, 0);
}

TEST(RegisterTiling, GuardedUnrollPreservesSemantics) {
  ir::Program p = kernels::buildKernel("gemm");
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.unrollInner = 4;
  opt.unrollOuter = 2;
  int n = registerTile(q, opt);
  EXPECT_GE(n, 1);
  // Trip counts NOT multiples of the factors: guards must handle tails.
  expectSameSemantics(p, q, {{"NI", 7}, {"NJ", 9}, {"NK", 5}});
}

TEST(RegisterTiling, UnrollAndJamReplicatesInnerBody) {
  // Jamming requires permutability, which tiling certifies: tile first,
  // then register-tile. The innermost point loop body must hold a 2x2
  // register tile (4 copies of S).
  ir::ProgramBuilder b("addmat");
  b.param("N", 16);
  b.array("A", {b.p("N"), b.p("N")});
  b.array("B", {b.p("N"), b.p("N")});
  b.array("C", {b.p("N"), b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.beginLoop("j", 0, b.p("N"));
  b.stmt("S", "C", {v("i"), v("j")}, ir::AssignOp::Set,
         ir::arrayRef("A", {v("i"), v("j")}) +
             ir::arrayRef("B", {v("i"), v("j")}));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.tileSize = 4;
  opt.unrollInner = 2;
  opt.unrollOuter = 2;
  detectParallelism(q, opt);
  ASSERT_EQ(tileForLocality(q, opt), 1);
  int n = registerTile(q, opt);
  EXPECT_GE(n, 2);
  int copies = 0;
  for (const auto& s : q.statements())
    if (s->label == "S") ++copies;
  EXPECT_EQ(copies, 4) << ir::printProgram(q);
  expectSameSemantics(p, q, {{"N", 9}});
}

/// Non-unit-step loops (tiled point loops that still carry a stride)
/// must unroll too: replicas advance by o*step and the guarded
/// remainder handles trip counts that are not multiples of the factor.
TEST(RegisterTiling, StridedLoopUnrollsWithGuardedRemainder) {
  ir::ProgramBuilder b("strided");
  b.param("N", 20);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {v("i")}, ir::AssignOp::AddAssign, ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  loopsOf(p)[0]->step = 3;
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.unrollInner = 2;
  opt.unrollOuter = 1;
  int n = registerTile(q, opt);
  EXPECT_GE(n, 1) << ir::printProgram(q);
  EXPECT_EQ(loopsOf(q)[0]->step, 6);
  // N=20: i = 0,3,...,18 — seven trips, so the second replica must be
  // guarded off on the tail; N=19 ends exactly on a replica boundary.
  expectSameSemantics(p, q, {{"N", 20}});
  expectSameSemantics(p, q, {{"N", 19}});
}

TEST(RegisterTiling, NoJamOutsidePermutableBands) {
  // seidel-2d untiled: jamming the i loop over j would be illegal; only
  // the innermost loop may be unrolled.
  ir::Program p = kernels::buildKernel("seidel-2d");
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.unrollInner = 2;
  opt.unrollOuter = 2;
  registerTile(q, opt);
  expectSameSemantics(p, q, {{"TSTEPS", 2}, {"N", 8}});
}

TEST(EndToEndAst, FullAstPipelineOnStencil) {
  ir::Program p = seidelLike();
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.tileSize = 4;
  opt.timeTileSize = 2;
  opt.unrollInner = 2;
  opt.unrollOuter = 1;
  skewForTilability(q, opt);
  detectParallelism(q, opt);
  tileForLocality(q, opt);
  registerTile(q, opt);
  expectSameSemantics(p, q, {{"T", 2}, {"N", 10}});
}

/// Differential property: the complete AST stage applied to every kernel
/// preserves semantics on awkward (non-dividing) sizes.
class AstStageOnAllKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(AstStageOnAllKernels, SemanticsPreserved) {
  ir::Program p = kernels::buildKernel(GetParam());
  ir::Program q = p.deepCopy();
  AstOptions opt;
  opt.tileSize = 3;
  opt.timeTileSize = 2;
  opt.unrollInner = 2;
  opt.unrollOuter = 2;
  skewForTilability(q, opt);
  detectParallelism(q, opt);
  tileForLocality(q, opt);
  registerTile(q, opt);
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = (name == "TSTEPS") ? 2 : 7;
  expectSameSemantics(p, q, params);
}

INSTANTIATE_TEST_SUITE_P(PolyBench, AstStageOnAllKernels,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& k : kernels::allKernels())
                             names.push_back(k.name);
                           return names;
                         }()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace polyast::transform
