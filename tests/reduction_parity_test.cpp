// Suite-wide strict-vs-relaxed reduction parity.
//
// Under --reductions=relaxed the affine scheduler may reorder proven-pure
// accumulations, so relaxed schedules differ from strict ones — but every
// one of them must still agree with the sequential oracle on both
// execution backends, with no loop falling back to sequential execution
// and no native kernel degrading to the interpreter. Doall/pipeline
// execution reorders whole statement instances (bit-identical cells);
// reduction privatization reassociates the accumulated sums, so those
// runs get the backends' standard 1e-9 tolerance (Backend::toleranceFor).
//
// Alongside the 22 x {strict, relaxed} x {interp, native} parity sweep:
//   * the relaxation must actually widen the schedule space (at least
//     three kernels select a different schedule under relaxed),
//   * every relaxed schedule must pass the reduction soundness
//     re-verification pass with zero findings above remark level, and
//   * ReductionStress repeatedly re-executes the most reassociated
//     relaxed schedules on a contended pool — the entry the CI TSan job
//     picks up to prove the privatize+merge discharge is race-free.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "exec/backend.hpp"
#include "flow/presets.hpp"
#include "ir/ast.hpp"
#include "kernels/polybench.hpp"
#include "poly/schedule.hpp"
#include "runtime/parallel.hpp"

namespace polyast {
namespace {

bool haveCompiler() {
  return std::system("command -v cc > /dev/null 2>&1") == 0;
}

/// Test-scale parameters (same choice as polyastc --execute).
std::map<std::string, std::int64_t> testParams(const ir::Program& p) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : p.params)
    params[name] = name == "TSTEPS" ? 3 : 7;
  return params;
}

ir::Program transformed(const std::string& kernel, poly::ReductionMode mode) {
  flow::PipelineOptions opt;
  opt.affine.reductions = mode;
  ir::Program p = kernels::buildKernel(kernel);
  flow::PassContext ctx;
  return flow::makePipeline("polyast", opt).run(p, ctx);
}

const char* modeName(poly::ReductionMode mode) {
  return mode == poly::ReductionMode::Relaxed ? "relaxed" : "strict";
}

struct ParityCase {
  std::string kernel;
  poly::ReductionMode mode;
  std::string backend;
};

std::vector<ParityCase> parityCases() {
  std::vector<ParityCase> cases;
  for (const auto& k : kernels::allKernels())
    for (auto mode : {poly::ReductionMode::Strict, poly::ReductionMode::Relaxed})
      for (const char* backend : {"interp", "native"})
        cases.push_back({k.name, mode, backend});
  return cases;
}

std::string parityName(const ::testing::TestParamInfo<ParityCase>& info) {
  std::string name = info.param.kernel + "_" + modeName(info.param.mode) +
                     "_" + info.param.backend;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

class ReductionParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(ReductionParity, MatchesOracleWithoutFallbacks) {
  const ParityCase& c = GetParam();
  if (c.backend == "native" && !haveCompiler())
    GTEST_SKIP() << "no C compiler on PATH";

  ir::Program p = transformed(c.kernel, c.mode);
  auto params = testParams(p);
  runtime::ThreadPool pool(4);

  auto backend = exec::makeBackend(c.backend);
  exec::Context par = kernels::makeContext(p, params);
  exec::Context seq = kernels::makeContext(p, params);
  exec::ParallelRunReport rep;
  exec::VerifyResult check = backend->verify(p, par, seq, pool, &rep);

  // Bit-exact unless a privatizing construct reassociated a sum.
  EXPECT_TRUE(check.tolerance == 0.0 || check.tolerance == 1e-9);
  EXPECT_TRUE(check.passed())
      << c.kernel << "@" << modeName(c.mode) << "/" << c.backend
      << " diverged: max abs diff " << check.maxAbsDiff << " > tolerance "
      << check.tolerance;
  EXPECT_EQ(rep.sequentialFallbacks, 0) << rep.summary();
  EXPECT_EQ(rep.nativeFallbacks, 0) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ReductionParity,
                         ::testing::ValuesIn(parityCases()), parityName);

/// The relaxation must widen the schedule space it licenses: several
/// kernels whose accumulation order pins the strict schedule select a
/// different (fused / interchanged) one once the proven-pure edges stop
/// constraining legality and the accumulator leaves the DL footprint.
TEST(ReductionRelaxation, WidensScheduleSelection) {
  std::vector<std::string> changed;
  for (const auto& k : kernels::allKernels()) {
    std::string strict =
        ir::printProgram(transformed(k.name, poly::ReductionMode::Strict));
    std::string relaxed =
        ir::printProgram(transformed(k.name, poly::ReductionMode::Relaxed));
    if (strict != relaxed) changed.push_back(k.name);
  }
  EXPECT_GE(changed.size(), 3u)
      << "relaxed mode changed no schedules beyond: " << changed.size();
}

/// Every relaxed schedule must be re-proven sound by the reductions pass:
/// each reduction-classified edge of the post-transform dependence graph
/// is either sequential inside one cell or lands in a construct the
/// executor privatizes. Zero findings above remark level, suite-wide.
TEST(ReductionRelaxation, RelaxedSchedulesReProven) {
  for (const auto& k : kernels::allKernels()) {
    ir::Program p = transformed(k.name, poly::ReductionMode::Relaxed);
    analysis::AnalysisOptions aopt;
    aopt.legality = aopt.races = aopt.bounds = false;
    aopt.reductions = true;
    aopt.relaxedReductions = true;
    analysis::AnalysisSession session(aopt);
    session.analyze(p, "final");
    EXPECT_EQ(session.engine().errors(), 0u) << k.name;
    EXPECT_EQ(session.engine().warnings(), 0u) << k.name;
    // Capturing the baseline on an already-tiled (stepped) program emits
    // a benign legality/baseline-unusable remark; everything else must
    // come from the reductions pass.
    for (const auto& d : session.engine().diagnostics())
      if (d.code != "baseline-unusable")
        EXPECT_EQ(d.analysis, "reductions") << d.str();
  }
}

/// Stress entry for the TSan CI job (ctest -R ReductionStress): the most
/// reassociated relaxed schedules, re-executed on a contended pool so
/// every privatize+merge path runs many times. Correctness of the values
/// is ReductionParity's job; this test exists to give the race detector
/// iterations to bite on.
TEST(ReductionStress, RelaxedPrivatizationUnderContention) {
  runtime::ThreadPool pool(8);
  auto backend = exec::makeBackend("interp");
  for (const char* name : {"gemm", "correlation", "doitgen", "gemver"}) {
    ir::Program p = transformed(name, poly::ReductionMode::Relaxed);
    auto params = testParams(p);
    for (int round = 0; round < 4; ++round) {
      exec::Context par = kernels::makeContext(p, params);
      exec::Context seq = kernels::makeContext(p, params);
      exec::VerifyResult check = backend->verify(p, par, seq, pool);
      ASSERT_TRUE(check.passed()) << name << " round " << round;
    }
  }
}

}  // namespace
}  // namespace polyast
