// Shared helpers for the PolyAST test suites.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/interp.hpp"
#include "ir/ast.hpp"
#include "kernels/polybench.hpp"

namespace polyast::testutil {

/// Runs `original` and `transformed` on identical seeded (and kernel-
/// conditioned) inputs and expects every shared buffer to match exactly
/// (legal instance reorderings keep per-instance arithmetic identical) and
/// the executed instance counts to be equal.
inline void expectSameSemantics(
    const ir::Program& original, const ir::Program& transformed,
    std::map<std::string, std::int64_t> params = {},
    double tolerance = 0.0) {
  exec::Context a = kernels::makeContext(original, params);
  exec::Context b = kernels::makeContext(transformed, params);
  std::int64_t na = exec::countInstances(original, a);
  std::int64_t nb = exec::countInstances(transformed, b);
  EXPECT_EQ(na, nb) << "instance count changed by transformation\n"
                    << ir::printProgram(transformed);
  exec::run(original, a);
  exec::run(transformed, b);
  EXPECT_LE(a.maxAbsDiff(b), tolerance)
      << "numerical divergence\n"
      << ir::printProgram(transformed);
}

/// Collects the loop nest structure as a string like "i(j(S,k(S)))" for
/// structural assertions.
inline std::string structureOf(const ir::NodePtr& node) {
  switch (node->kind) {
    case ir::Node::Kind::Block: {
      std::string out;
      auto b = std::static_pointer_cast<ir::Block>(node);
      for (std::size_t i = 0; i < b->children.size(); ++i) {
        if (i) out += ",";
        out += structureOf(b->children[i]);
      }
      return out;
    }
    case ir::Node::Kind::Loop: {
      auto l = std::static_pointer_cast<ir::Loop>(node);
      return l->iter + "(" + structureOf(l->body) + ")";
    }
    case ir::Node::Kind::Stmt: {
      auto s = std::static_pointer_cast<ir::Stmt>(node);
      return s->label.empty() ? "S" : s->label;
    }
  }
  return "?";
}

inline std::string structureOf(const ir::Program& p) {
  return structureOf(std::static_pointer_cast<ir::Node>(p.root));
}

}  // namespace polyast::testutil
