// Randomized differential testing of the complete pipeline: generate random
// SCoP programs (random nest depths, affine accesses with small offsets,
// reductions, transposed reads), run the poly+AST flow AND the Pluto-like
// baseline on each, and require interpreter-exact semantics preservation.
//
// This is the widest net in the suite: it exercises fusion/distribution
// decisions, retiming, guard emission, skewing, tiling and unrolling on
// shapes no hand-written kernel covers.
#include <gtest/gtest.h>

#include <cstdint>

#include "baseline/pluto.hpp"
#include "flow/presets.hpp"
#include "ir/builder.hpp"
#include "test_util.hpp"
#include "poly/codegen.hpp"
#include "transform/flow.hpp"

namespace polyast::transform {
namespace {

using ir::AffExpr;

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed * 2654435761u + 17) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  std::int64_t range(std::int64_t lo, std::int64_t hi) {  // inclusive
    return lo + static_cast<std::int64_t>(
                    next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
  bool chance(int percent) { return range(0, 99) < percent; }

 private:
  std::uint64_t state_;
};

/// Builds a random program over a handful of 2-D arrays with padded
/// bounds, so every generated subscript (iterator ± offset, occasionally
/// transposed) stays in range.
ir::Program randomProgram(std::uint64_t seed) {
  Rng rng(seed);
  ir::ProgramBuilder b("fuzz");
  b.param("N", 16);
  const char* arrays[] = {"A", "B", "C", "D"};
  for (const char* a : arrays)
    b.array(a, {b.p("N") + AffExpr(4), b.p("N") + AffExpr(4)});

  auto v = [](const std::string& n) { return AffExpr::term(n); };
  int stmtId = 0;
  int nests = static_cast<int>(rng.range(1, 3));
  for (int nest = 0; nest < nests; ++nest) {
    int depth = static_cast<int>(rng.range(1, 3));
    std::vector<std::string> iters;
    for (int d = 0; d < depth; ++d) {
      std::string it = "i" + std::to_string(nest) + std::to_string(d);
      std::int64_t lo = rng.range(0, 2);
      b.beginLoop(it, lo, b.p("N") + AffExpr(rng.range(0, 2)));
      iters.push_back(it);
    }
    int stmts = static_cast<int>(rng.range(1, 3));
    for (int s = 0; s < stmts; ++s) {
      // Subscripts: pick two (possibly equal) iterators with offsets in
      // [0, 2]; depth-1 nests use the iterator twice.
      auto sub = [&]() {
        const std::string& it =
            iters[static_cast<std::size_t>(rng.range(0, depth - 1))];
        return v(it) + AffExpr(rng.range(0, 2));
      };
      std::vector<AffExpr> lhs{sub(), sub()};
      const char* lhsArr = arrays[rng.range(0, 3)];
      // RHS: sum/product of 1-3 reads.
      ir::ExprPtr rhs;
      int reads = static_cast<int>(rng.range(1, 3));
      for (int r = 0; r < reads; ++r) {
        ir::ExprPtr term =
            ir::arrayRef(arrays[rng.range(0, 3)], {sub(), sub()});
        if (rng.chance(30)) term = term * ir::floatLit(0.5);
        rhs = rhs ? (rng.chance(50) ? rhs + term : rhs * term) : term;
      }
      ir::AssignOp op = ir::AssignOp::Set;
      if (rng.chance(40)) op = ir::AssignOp::AddAssign;
      else if (rng.chance(20)) op = ir::AssignOp::MulAssign;
      b.stmt("S" + std::to_string(stmtId++), lhsArr, std::move(lhs), op,
             std::move(rhs));
    }
    for (int d = 0; d < depth; ++d) b.endLoop();
  }
  return b.build();
}

class FuzzFlow : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFlow, PolyAstPreservesSemantics) {
  for (int trial = 0; trial < 6; ++trial) {
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 1000 +
        static_cast<std::uint64_t>(trial);
    ir::Program p = randomProgram(seed);
    FlowOptions o;
    o.ast.tileSize = 4;
    o.ast.timeTileSize = 3;
    o.ast.unrollInner = 2;
    o.ast.unrollOuter = 2;
    ir::Program q = optimize(p, o);
    SCOPED_TRACE("seed " + std::to_string(seed));
    testutil::expectSameSemantics(p, q, {{"N", 9}});
  }
}

TEST_P(FuzzFlow, PlutoBaselinePreservesSemantics) {
  for (int trial = 0; trial < 6; ++trial) {
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 7777 +
        static_cast<std::uint64_t>(trial);
    ir::Program p = randomProgram(seed);
    baseline::PlutoOptions o;
    o.ast.tileSize = 4;
    o.fuse = (trial % 3 == 0)   ? baseline::PlutoOptions::Fuse::Max
             : (trial % 3 == 1) ? baseline::PlutoOptions::Fuse::Smart
                                : baseline::PlutoOptions::Fuse::None;
    o.vectorizeIntraTile = trial % 2 == 0;
    ir::Program q = baseline::plutoOptimize(p, o);
    SCOPED_TRACE("seed " + std::to_string(seed));
    testutil::expectSameSemantics(p, q, {{"N", 9}});
  }
}

TEST_P(FuzzFlow, AffineStageAloneIsLegalAndExact) {
  for (int trial = 0; trial < 6; ++trial) {
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 31337 +
        static_cast<std::uint64_t>(trial);
    ir::Program p = randomProgram(seed);
    poly::Scop scop = poly::extractScop(p);
    poly::PoDG podg = poly::computeDependences(scop);
    poly::ScheduleMap sched;
    try {
      sched = computeAffineTransform(scop);
    } catch (const Error&) {
      continue;  // exhaustion is allowed; the flow falls back to identity
    }
    EXPECT_TRUE(poly::scheduleIsLegal(scop, podg, sched))
        << "seed " << seed;
    ir::Program q = poly::applySchedules(scop, sched);
    SCOPED_TRACE("seed " + std::to_string(seed));
    testutil::expectSameSemantics(p, q, {{"N", 9}});
  }
}

/// Randomized pass subsets through the inter-pass oracle: compose an
/// arbitrary sub-pipeline of the five Algorithm 1 passes (plus the
/// baseline's wavefront conversion when it can apply) and let the pass
/// manager verify the program against the interpreter after EVERY pass.
/// This catches a pass that is only correct because a later pass papers
/// over it — something the whole-flow suites above cannot see.
TEST_P(FuzzFlow, RandomPassSubsetsVerifyEachPass) {
  for (int trial = 0; trial < 6; ++trial) {
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 424243 +
        static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    ir::Program p = randomProgram(seed);

    AstOptions aopt;
    aopt.tileSize = static_cast<std::int64_t>(rng.range(3, 5));
    aopt.timeTileSize = static_cast<std::int64_t>(rng.range(2, 4));
    aopt.unrollInner = 2;
    aopt.unrollOuter = 2;

    // Random subset, in Algorithm 1 order. An empty mask degenerates to
    // the identity pipeline, which must also verify.
    std::uint64_t mask = rng.next() % 64;
    flow::PassPipeline pipe("fuzz-subset");
    if (mask & 1) {
      AffineOptions affine;
      if (rng.chance(30)) affine.fusion = FusionHeuristic::MaxLegal;
      pipe.add(std::make_shared<flow::AffineTransformPass>(
          affine, aopt.paramMin, /*fallbackToIdentity=*/true));
    }
    if (mask & 2) pipe.add(std::make_shared<flow::SkewPass>(aopt));
    if (mask & 4) pipe.add(std::make_shared<flow::ParallelismPass>(aopt));
    if (mask & 8) pipe.add(std::make_shared<flow::TilePass>(aopt));
    if ((mask & 4) && (mask & 8) && (mask & 16))
      pipe.add(std::make_shared<flow::WavefrontPass>());
    if (mask & 32) pipe.add(std::make_shared<flow::RegisterTilePass>(aopt));

    flow::PassContext ctx;
    ctx.verify.enabled = true;
    ctx.verify.makeContext = [](const ir::Program& q) {
      return kernels::makeContext(q, {{"N", 9}});
    };
    SCOPED_TRACE("seed " + std::to_string(seed) + " mask " +
                 std::to_string(mask));
    ir::Program q = pipe.run(p, ctx);  // throws on any per-pass divergence
    EXPECT_EQ(ctx.report.passes.size(), pipe.passes().size());
    for (const auto& pass : ctx.report.passes) {
      EXPECT_TRUE(pass.verified) << pass.pass;
      EXPECT_EQ(pass.oracleMaxAbsDiff, 0.0) << pass.pass;
    }
    testutil::expectSameSemantics(p, q, {{"N", 9}});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFlow, ::testing::Range(0, 12));

}  // namespace
}  // namespace polyast::transform
