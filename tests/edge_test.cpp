// API contract and edge-case coverage: error paths, degenerate inputs, and
// option combinations not exercised by the kernel-driven suites.
#include <gtest/gtest.h>

#include "baseline/pluto.hpp"
#include "ir/builder.hpp"
#include "ir/cemit.hpp"
#include "kernels/polybench.hpp"
#include "poly/codegen.hpp"
#include "support/error.hpp"
#include "test_util.hpp"
#include "transform/flow.hpp"

namespace polyast {
namespace {

using ir::AffExpr;

TEST(Edge, EmptyProgramFlowsCleanly) {
  ir::ProgramBuilder b("empty");
  b.param("N", 8);
  ir::Program p = b.build();
  ir::Program q = transform::optimize(p);
  EXPECT_TRUE(q.statements().empty());
  ir::Program r = baseline::plutoOptimize(p);
  EXPECT_TRUE(r.statements().empty());
}

TEST(Edge, SingleStatementNoLoops) {
  ir::ProgramBuilder b("scalarprog");
  b.array("s", {AffExpr(1)});
  b.stmt("S", "s", {AffExpr(0)}, ir::AssignOp::Set, ir::floatLit(7.0));
  ir::Program p = b.build();
  ir::Program q = transform::optimize(p);
  testutil::expectSameSemantics(p, q);
}

TEST(Edge, BoundSingleThrowsOnMultiPart) {
  ir::Bound b;
  b.parts = {AffExpr(0), AffExpr(1)};
  EXPECT_THROW(b.single(), Error);
}

TEST(Edge, ScheduleDepthMismatchThrows) {
  ir::Program p = kernels::buildKernel("gemm");
  poly::Scop scop = poly::extractScop(p);
  poly::ScheduleMap sched = poly::identitySchedules(scop);
  sched[0] = poly::Schedule::identity(5);  // wrong depth
  EXPECT_THROW(poly::applySchedules(scop, sched), Error);
}

TEST(Edge, UnknownKernelThrows) {
  EXPECT_THROW(kernels::kernel("nope"), Error);
  EXPECT_THROW(kernels::buildKernel(""), Error);
}

TEST(Edge, CEmitWithoutMainOmitsMain) {
  ir::Program p = kernels::buildKernel("gemm");
  ir::CEmitOptions opt;
  opt.withMain = false;
  std::string src = ir::emitC(p, opt);
  EXPECT_EQ(src.find("int main"), std::string::npos);
  // Kernel-only TUs export the kernel (a static one nobody calls would
  // be an -Werror=unused-function in a standalone compile).
  EXPECT_EQ(src.find("static void kernel(void)"), std::string::npos);
  EXPECT_NE(src.find("void kernel(void)"), std::string::npos);
}

TEST(Edge, TinyTripCountsSurviveEverything) {
  // N smaller than every tile/unroll factor: guards and min/max bounds
  // must keep the transformed programs exact.
  for (const char* name : {"gemm", "jacobi-2d-imper", "trisolv"}) {
    ir::Program p = kernels::buildKernel(name);
    transform::FlowOptions o;
    o.ast.tileSize = 16;
    o.ast.timeTileSize = 8;
    o.ast.unrollInner = 4;
    o.ast.unrollOuter = 4;
    ir::Program q = transform::optimize(p, o);
    std::map<std::string, std::int64_t> params;
    for (const auto& n : p.params) params[n] = (n == "TSTEPS") ? 1 : 5;
    SCOPED_TRACE(name);
    testutil::expectSameSemantics(p, q, params);
  }
}

TEST(Edge, FlowIsDeterministic) {
  // Two runs of the optimizer on the same input must print identically
  // (the scheduler iterates ordered containers only).
  ir::Program p1 = kernels::buildKernel("2mm");
  ir::Program p2 = kernels::buildKernel("2mm");
  std::string a = ir::printProgram(transform::optimize(p1));
  std::string b = ir::printProgram(transform::optimize(p2));
  EXPECT_EQ(a, b);
}

TEST(Edge, OptimizeIsIdempotentOnItsOutputSemantics) {
  // Re-optimizing an already-optimized (untiled) program must still be
  // semantics-preserving.
  ir::Program p = kernels::buildKernel("gemm");
  transform::FlowOptions o;
  o.enableTiling = false;          // keep the output a SCoP (unit steps)
  o.enableRegisterTiling = false;
  ir::Program q = transform::optimize(p, o);
  ir::Program r = transform::optimize(q, o);
  testutil::expectSameSemantics(p, r, {{"NI", 7}, {"NJ", 6}, {"NK", 5}});
}

TEST(Edge, ParamOverridesPropagate) {
  ir::Program p = kernels::buildKernel("gemm");
  exec::Context ctx(p, {{"NI", 3}, {"NJ", 3}, {"NK", 3}});
  EXPECT_EQ(ctx.param("NI"), 3);
  EXPECT_EQ(ctx.buffer("C").size(), 9u);
  EXPECT_THROW(exec::Context(p, {{"XX", 1}}), Error);
}

TEST(Edge, GuardedStatementOutsideLoopUsesParams) {
  // Guards with parameter-only expressions act as compile-time-ish
  // predicates.
  ir::ProgramBuilder b("g");
  b.param("N", 8);
  b.array("A", {b.p("N")});
  b.stmt("S", "A", {AffExpr(0)}, ir::AssignOp::Set, ir::floatLit(1.0));
  ir::Program p = b.build();
  p.statements()[0]->guards.push_back(b.p("N") - AffExpr(10));  // N >= 10
  exec::Context small(p, {{"N", 8}});
  exec::run(p, small);
  EXPECT_EQ(small.buffer("A")[0], 0.0);
  exec::Context big(p, {{"N", 12}});
  exec::run(p, big);
  EXPECT_EQ(big.buffer("A")[0], 1.0);
}

}  // namespace
}  // namespace polyast
