#include "baseline/pluto.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"
#include "test_util.hpp"
#include "transform/ast_stage.hpp"

namespace polyast::baseline {
namespace {

using ir::AffExpr;
using ir::ParallelKind;
using testutil::expectSameSemantics;

std::shared_ptr<ir::Loop> loopAt(const ir::Program& p, int stmtId,
                                 std::size_t depth) {
  return p.enclosingLoops()[stmtId][depth];
}

TEST(Wavefront, GuardedDiagonalExecutionIsExact) {
  // Build a tiled 2-level nest with forward deps and wavefront it by hand.
  ir::ProgramBuilder b("wf");
  b.param("N", 24);
  b.array("A", {b.p("N") + AffExpr(1), b.p("N") + AffExpr(1)});
  b.beginLoop("i", 1, b.p("N"));
  b.beginLoop("j", 1, b.p("N"));
  b.stmt("S", "A", {AffExpr::term("i"), AffExpr::term("j")},
         ir::AssignOp::Set,
         ir::arrayRef("A", {AffExpr::term("i") - AffExpr(1),
                            AffExpr::term("j")}) +
             ir::arrayRef("A", {AffExpr::term("i"),
                                AffExpr::term("j") - AffExpr(1)}));
  b.endLoop();
  b.endLoop();
  ir::Program p = b.build();
  ir::Program q = p.deepCopy();
  transform::AstOptions opt;
  opt.tileSize = 4;
  opt.timeTileSize = 4;
  transform::detectParallelism(q, opt);
  ASSERT_EQ(transform::tileForLocality(q, opt), 1);
  auto t1 = loopAt(q, 0, 0);
  auto t2 = loopAt(q, 0, 1);
  ASSERT_TRUE(t1->isTileLoop);
  ASSERT_TRUE(t2->isTileLoop);
  ASSERT_TRUE(wavefrontTiles(q, t1, t2));
  // Wave loop seq, first tile loop doall.
  auto wave = loopAt(q, 0, 0);
  EXPECT_EQ(wave->iter.rfind("w_", 0), 0u) << ir::printProgram(q);
  EXPECT_EQ(wave->parallel, ParallelKind::None);
  EXPECT_EQ(loopAt(q, 0, 1)->parallel, ParallelKind::Doall);
  expectSameSemantics(p, q, {{"N", 14}});
}

TEST(Wavefront, RefusesMultiPartBounds) {
  ir::ProgramBuilder b("wf2");
  b.param("N", 8);
  b.array("A", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S", "A", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  ir::Program p = b.build();
  auto l = loopAt(p, 0, 0);
  auto l2 = std::make_shared<ir::Loop>(*l);
  l->upper.parts.push_back(AffExpr(100));  // multi-part
  EXPECT_FALSE(wavefrontTiles(p, l, l2));
}

TEST(Pluto, DoallOnlyNeverEmitsPipelineOrReduction) {
  for (const char* name : {"gemm", "jacobi-2d-imper", "mvt", "atax"}) {
    ir::Program p = kernels::buildKernel(name);
    PlutoOptions opt;
    opt.ast.tileSize = 4;
    ir::Program q = plutoOptimize(p, opt);
    q.forEachStmt([&](const std::shared_ptr<ir::Stmt>&,
                      const std::vector<std::shared_ptr<ir::Loop>>& loops) {
      for (const auto& l : loops) {
        EXPECT_NE(l->parallel, ParallelKind::Pipeline) << name;
        EXPECT_NE(l->parallel, ParallelKind::Reduction) << name;
        EXPECT_NE(l->parallel, ParallelKind::ReductionPipeline) << name;
      }
    });
  }
}

TEST(Pluto, SmartFuseRequiresSharedArray) {
  // Two independent loops over unrelated arrays: smartfuse must NOT fuse,
  // maxfuse may.
  ir::ProgramBuilder b("nf");
  b.param("N", 16);
  b.array("A", {b.p("N")});
  b.array("B", {b.p("N")});
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S1", "A", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(1.0));
  b.endLoop();
  b.beginLoop("i", 0, b.p("N"));
  b.stmt("S2", "B", {AffExpr::term("i")}, ir::AssignOp::Set,
         ir::floatLit(2.0));
  b.endLoop();
  ir::Program p = b.build();
  PlutoOptions smart;
  smart.fuse = PlutoOptions::Fuse::Smart;
  smart.registerTiling = false;
  ir::Program qs = plutoOptimize(p, smart);
  EXPECT_EQ(qs.root->children.size(), 2u) << ir::printProgram(qs);
  PlutoOptions max;
  max.fuse = PlutoOptions::Fuse::Max;
  max.registerTiling = false;
  ir::Program qm = plutoOptimize(p, max);
  EXPECT_EQ(qm.root->children.size(), 1u) << ir::printProgram(qm);
  expectSameSemantics(p, qs, {{"N", 12}});
  expectSameSemantics(p, qm, {{"N", 12}});
}

TEST(Pluto, KeepsOriginalLoopOrder) {
  // preferOriginalOrder: gemm stays (i, j, k) — A read is A[c1][c3].
  ir::Program p = kernels::buildKernel("gemm");
  PlutoOptions opt;
  opt.registerTiling = false;
  opt.ast.tileSize = 0x7fffffff;  // effectively untiled for readability
  ir::Program q = plutoOptimize(p, opt);
  std::string s = ir::printProgram(q);
  EXPECT_NE(s.find("A[c1][c3]"), std::string::npos) << s;
}

}  // namespace
}  // namespace polyast::baseline
