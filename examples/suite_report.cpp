// Suite report: runs the poly+AST flow and the Pluto-like baseline over the
// entire PolyBench/C 3.2 suite (Table II) and prints, per kernel, what each
// optimizer did — fusion structure, skews, tiled bands, detected
// parallelism — plus an interpreter-validated correctness verdict.
//
//   $ ./examples/suite_report           # text table
//   $ ./examples/suite_report --json    # machine-readable (obs JsonWriter)
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "baseline/pluto.hpp"
#include "exec/interp.hpp"
#include "kernels/polybench.hpp"
#include "obs/json.hpp"
#include "transform/flow.hpp"

using namespace polyast;

namespace {

/// Formats the flow's parallelism-detection outcome, e.g. "doall x2" or
/// "pipeline" (previously reconstructed by walking the output AST; the
/// report now carries the counts directly).
std::string parallelismSummary(const transform::ParallelismStats& s) {
  std::ostringstream out;
  auto item = [&](const char* name, int count) {
    if (count == 0) return;
    if (out.tellp() > 0) out << "+";
    out << name;
    if (count > 1) out << " x" << count;
  };
  item("doall", s.doall);
  item("red", s.reduction);
  item("pipeline", s.pipeline);
  item("red-pipe", s.reductionPipeline);
  return s.total() == 0 ? "seq" : out.str();
}

bool validate(const ir::Program& a, const ir::Program& b) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : a.params) params[name] = name == "TSTEPS" ? 2 : 7;
  exec::Context ca = kernels::makeContext(a, params);
  exec::Context cb = kernels::makeContext(b, params);
  exec::run(a, ca);
  exec::run(b, cb);
  return ca.maxAbsDiff(cb) == 0.0;
}

struct Row {
  std::string kernel;
  std::size_t stmts = 0;
  transform::FlowReport report;
  bool verified = false;
};

void printTable(const std::vector<Row>& rows, int failures) {
  std::cout << std::left << std::setw(18) << "kernel" << std::setw(7)
            << "stmts" << std::setw(8) << "skews" << std::setw(7) << "bands"
            << std::setw(9) << "unrolls" << std::setw(22) << "parallelism"
            << "verified\n"
            << std::string(78, '-') << "\n";
  for (const auto& r : rows)
    std::cout << std::setw(18) << r.kernel << std::setw(7) << r.stmts
              << std::setw(8) << r.report.skewsApplied << std::setw(7)
              << r.report.bandsTiled << std::setw(9)
              << r.report.loopsUnrolled << std::setw(22)
              << parallelismSummary(r.report.parallelism)
              << (r.verified ? "yes" : "NO") << "\n";
  std::cout << std::string(78, '-') << "\n"
            << (failures == 0 ? "all kernels verified against the "
                                "interpreter oracle\n"
                              : "FAILURES detected\n");
}

void printJson(const std::vector<Row>& rows, int failures) {
  obs::JsonWriter w(std::cout);
  w.beginObject();
  w.key("schema").value("polyast-suite-report-v1");
  w.key("kernels").beginArray();
  for (const auto& r : rows) {
    w.beginObject();
    w.key("name").value(r.kernel);
    w.key("stmts").value(static_cast<std::uint64_t>(r.stmts));
    w.key("skews").value(r.report.skewsApplied);
    w.key("bands_tiled").value(r.report.bandsTiled);
    w.key("loops_unrolled").value(r.report.loopsUnrolled);
    w.key("parallelism").beginObject();
    w.key("doall").value(r.report.parallelism.doall);
    w.key("reduction").value(r.report.parallelism.reduction);
    w.key("pipeline").value(r.report.parallelism.pipeline);
    w.key("reduction_pipeline")
        .value(r.report.parallelism.reductionPipeline);
    w.endObject();
    w.key("affine_stage_succeeded").value(r.report.affineStageSucceeded);
    w.key("verified").value(r.verified);
    w.endObject();
  }
  w.endArray();
  w.key("failures").value(failures);
  w.endObject();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  std::vector<Row> rows;
  int failures = 0;
  for (const auto& k : kernels::allKernels()) {
    Row r;
    r.kernel = k.name;
    ir::Program input = k.build();
    r.stmts = input.statements().size();
    transform::FlowOptions opt;
    opt.ast.tileSize = 8;
    opt.ast.timeTileSize = 3;
    ir::Program optimized = transform::optimize(input, opt, &r.report);
    r.verified = validate(input, optimized);
    if (!r.verified) ++failures;
    rows.push_back(std::move(r));
  }
  if (json)
    printJson(rows, failures);
  else
    printTable(rows, failures);
  return failures;
}
