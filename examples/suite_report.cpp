// Suite report: runs the poly+AST flow and the Pluto-like baseline over the
// entire PolyBench/C 3.2 suite (Table II) and prints, per kernel, what each
// optimizer did — fusion structure, skews, tiled bands, detected
// parallelism — plus an interpreter-validated correctness verdict.
//
//   $ ./examples/suite_report
#include <iomanip>
#include <iostream>
#include <sstream>

#include "baseline/pluto.hpp"
#include "exec/interp.hpp"
#include "kernels/polybench.hpp"
#include "transform/flow.hpp"

using namespace polyast;

namespace {

/// Formats the flow's parallelism-detection outcome, e.g. "doall x2" or
/// "pipeline" (previously reconstructed by walking the output AST; the
/// report now carries the counts directly).
std::string parallelismSummary(const transform::ParallelismStats& s) {
  std::ostringstream out;
  auto item = [&](const char* name, int count) {
    if (count == 0) return;
    if (out.tellp() > 0) out << "+";
    out << name;
    if (count > 1) out << " x" << count;
  };
  item("doall", s.doall);
  item("red", s.reduction);
  item("pipeline", s.pipeline);
  item("red-pipe", s.reductionPipeline);
  return s.total() == 0 ? "seq" : out.str();
}

bool validate(const ir::Program& a, const ir::Program& b) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : a.params) params[name] = name == "TSTEPS" ? 2 : 7;
  exec::Context ca = kernels::makeContext(a, params);
  exec::Context cb = kernels::makeContext(b, params);
  exec::run(a, ca);
  exec::run(b, cb);
  return ca.maxAbsDiff(cb) == 0.0;
}

}  // namespace

int main() {
  std::cout << std::left << std::setw(18) << "kernel" << std::setw(7)
            << "stmts" << std::setw(8) << "skews" << std::setw(7) << "bands"
            << std::setw(9) << "unrolls" << std::setw(22) << "parallelism"
            << "verified\n"
            << std::string(78, '-') << "\n";
  int failures = 0;
  for (const auto& k : kernels::allKernels()) {
    ir::Program input = k.build();
    transform::FlowOptions opt;
    opt.ast.tileSize = 8;
    opt.ast.timeTileSize = 3;
    transform::FlowReport report;
    ir::Program optimized = transform::optimize(input, opt, &report);
    bool ok = validate(input, optimized);
    if (!ok) ++failures;
    std::cout << std::setw(18) << k.name << std::setw(7)
              << input.statements().size() << std::setw(8)
              << report.skewsApplied << std::setw(7) << report.bandsTiled
              << std::setw(9) << report.loopsUnrolled << std::setw(22)
              << parallelismSummary(report.parallelism) << (ok ? "yes" : "NO")
              << "\n";
  }
  std::cout << std::string(78, '-') << "\n"
            << (failures == 0 ? "all kernels verified against the "
                                "interpreter oracle\n"
                              : "FAILURES detected\n");
  return failures;
}
