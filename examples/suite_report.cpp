// Suite report: runs the poly+AST flow and the Pluto-like baseline over the
// entire PolyBench/C 3.2 suite (Table II) and prints, per kernel, what each
// optimizer did — fusion structure, skews, tiled bands, detected
// parallelism — plus an interpreter-validated correctness verdict.
//
//   $ ./examples/suite_report
#include <functional>
#include <iomanip>
#include <iostream>

#include "baseline/pluto.hpp"
#include "exec/interp.hpp"
#include "kernels/polybench.hpp"
#include "transform/flow.hpp"

using namespace polyast;

namespace {

std::string outermostParallelism(const ir::Program& p) {
  std::string found = "seq";
  std::function<bool(const ir::NodePtr&)> walk =
      [&](const ir::NodePtr& n) -> bool {
    if (n->kind == ir::Node::Kind::Block) {
      for (const auto& c : std::static_pointer_cast<ir::Block>(n)->children)
        if (walk(c)) return true;
      return false;
    }
    if (n->kind == ir::Node::Kind::Loop) {
      auto l = std::static_pointer_cast<ir::Loop>(n);
      if (l->parallel != ir::ParallelKind::None) {
        found = ir::parallelKindName(l->parallel);
        return true;
      }
      return walk(l->body);
    }
    return false;
  };
  walk(p.root);
  return found;
}

bool validate(const ir::Program& a, const ir::Program& b) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : a.params) params[name] = name == "TSTEPS" ? 2 : 7;
  exec::Context ca = kernels::makeContext(a, params);
  exec::Context cb = kernels::makeContext(b, params);
  exec::run(a, ca);
  exec::run(b, cb);
  return ca.maxAbsDiff(cb) == 0.0;
}

}  // namespace

int main() {
  std::cout << std::left << std::setw(18) << "kernel" << std::setw(7)
            << "stmts" << std::setw(8) << "skews" << std::setw(7) << "bands"
            << std::setw(9) << "unrolls" << std::setw(22) << "parallelism"
            << "verified\n"
            << std::string(78, '-') << "\n";
  int failures = 0;
  for (const auto& k : kernels::allKernels()) {
    ir::Program input = k.build();
    transform::FlowOptions opt;
    opt.ast.tileSize = 8;
    opt.ast.timeTileSize = 3;
    transform::FlowReport report;
    ir::Program optimized = transform::optimize(input, opt, &report);
    bool ok = validate(input, optimized);
    if (!ok) ++failures;
    std::cout << std::setw(18) << k.name << std::setw(7)
              << input.statements().size() << std::setw(8)
              << report.skewsApplied << std::setw(7) << report.bandsTiled
              << std::setw(9) << report.loopsUnrolled << std::setw(22)
              << outermostParallelism(optimized) << (ok ? "yes" : "NO")
              << "\n";
  }
  std::cout << std::string(78, '-') << "\n"
            << (failures == 0 ? "all kernels verified against the "
                                "interpreter oracle\n"
                              : "FAILURES detected\n");
  return failures;
}
