// Stencil pipeline example: runs a Gauss-Seidel sweep three ways using the
// runtime substrate directly — sequential, wavefront doall (Fig. 6 right),
// and point-to-point pipeline (Fig. 6 left) — verifying they compute the
// same result and reporting wall-clock + synchronization counters.
//
//   $ POLYAST_THREADS=4 ./examples/stencil_pipeline [N] [T]
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "runtime/parallel.hpp"

using namespace polyast;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::int64_t kBlock = 64;

struct Grid {
  std::int64_t N;
  std::vector<double> A;
  explicit Grid(std::int64_t n) : N(n), A(static_cast<std::size_t>(n * n)) {
    for (std::size_t i = 0; i < A.size(); ++i)
      A[i] = 0.5 + static_cast<double>((i * 2654435761u) % 1000) / 1000.0;
  }
  /// Parallelogram block: rows [rlo, rhi), skewed cols w = i + j.
  void block(std::int64_t rlo, std::int64_t rhi, std::int64_t wlo,
             std::int64_t whi) {
    for (std::int64_t i = rlo; i < rhi; ++i) {
      double* an = &A[(i - 1) * N];
      double* ac = &A[i * N];
      double* as = &A[(i + 1) * N];
      std::int64_t jlo = std::max<std::int64_t>(1, wlo - i);
      std::int64_t jhi = std::min(N - 1, whi - i);
      for (std::int64_t j = jlo; j < jhi; ++j)
        ac[j] = (an[j - 1] + an[j] + an[j + 1] + ac[j - 1] + ac[j] +
                 ac[j + 1] + as[j - 1] + as[j] + as[j + 1]) /
                9.0;
    }
  }
  double sum() const {
    double s = 0.0;
    for (double x : A) s += x;
    return s;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::int64_t N = argc > 1 ? std::atoll(argv[1]) : 1000;
  std::int64_t T = argc > 2 ? std::atoll(argv[2]) : 10;
  runtime::ThreadPool pool([] {
    if (const char* env = std::getenv("POLYAST_THREADS"))
      return static_cast<unsigned>(std::atoi(env));
    return 0u;
  }());
  std::cout << "seidel " << N << "x" << N << ", " << T << " sweeps, "
            << pool.threadCount() << " threads\n";

  std::int64_t NB = (N - 2 + kBlock - 1) / kBlock;
  std::int64_t WB = (2 * N - 5 + kBlock - 1) / kBlock;

  auto runWith = [&](const char* label, auto executor) {
    Grid g(N);
    auto start = Clock::now();
    runtime::SyncStats stats;
    for (std::int64_t t = 0; t < T; ++t) {
      stats = executor(pool, NB, WB, [&](std::int64_t r, std::int64_t u) {
        std::int64_t rlo = 1 + r * kBlock;
        std::int64_t rhi = std::min(N - 1, rlo + kBlock);
        std::int64_t wlo = 2 + u * kBlock;
        std::int64_t whi = std::min(2 * N - 3, wlo + kBlock);
        g.block(rlo, rhi, wlo, whi);
      });
    }
    double secs = std::chrono::duration<double>(Clock::now() - start).count();
    std::cout << label << ": " << secs << " s, checksum " << g.sum()
              << ", barriers/sweep " << stats.barriers
              << ", p2p waits/sweep " << stats.pointToPointWaits << "\n";
    return g.sum();
  };

  // Sequential reference.
  Grid ref(N);
  auto start = Clock::now();
  for (std::int64_t t = 0; t < T; ++t) ref.block(1, N - 1, 2, 2 * N - 3);
  double refSecs = std::chrono::duration<double>(Clock::now() - start).count();
  std::cout << "sequential: " << refSecs << " s, checksum " << ref.sum()
            << "\n";

  double wf = runWith("wavefront doall", [](runtime::ThreadPool& p,
                                            std::int64_t r, std::int64_t c,
                                            auto cell) {
    return runtime::wavefront2D(p, r, c, cell);
  });
  double pl = runWith("p2p pipeline  ", [](runtime::ThreadPool& p,
                                           std::int64_t r, std::int64_t c,
                                           auto cell) {
    return runtime::pipeline2D(p, r, c, cell);
  });

  bool ok = std::fabs(wf - ref.sum()) < 1e-6 * std::fabs(ref.sum()) &&
            std::fabs(pl - ref.sum()) < 1e-6 * std::fabs(ref.sum());
  std::cout << (ok ? "all schedules agree\n" : "MISMATCH\n");
  return ok ? 0 : 1;
}
