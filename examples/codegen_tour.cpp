// Codegen tour: reproduces the paper's motivating example (Sec. II) on the
// 2mm benchmark — the input code (Fig. 1), the maximal-fusion baseline
// structure (Fig. 2 behaviour, as far as the restricted generator can
// express it), and the poly+AST structure (Fig. 3) — and prints the
// transformation pipeline's view at each stage.
//
//   $ ./examples/codegen_tour [kernel-name]
#include <iostream>

#include "baseline/pluto.hpp"
#include "kernels/polybench.hpp"
#include "poly/codegen.hpp"
#include "transform/affine.hpp"
#include "transform/flow.hpp"

using namespace polyast;

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "2mm";
  ir::Program input = kernels::buildKernel(name);

  std::cout << "=== Fig. 1 — input " << name << " ===\n"
            << ir::printProgram(input) << "\n";

  // The dependence summary the polyhedral stage works from.
  poly::Scop scop = poly::extractScop(input);
  poly::PoDG podg = poly::computeDependences(scop);
  std::cout << "statements: " << scop.stmts.size()
            << ", dependence polyhedra: " << podg.deps.size() << "\n\n";

  // Fig. 2 behaviour: the Pluto-like baseline with maximal fusion.
  baseline::PlutoOptions pocc;
  pocc.fuse = baseline::PlutoOptions::Fuse::Max;
  pocc.registerTiling = false;
  pocc.ast.tileSize = 32;
  ir::Program figure2 = baseline::plutoOptimize(input, pocc);
  std::cout << "=== Fig. 2 — maximal fusion baseline ===\n"
            << ir::printProgram(figure2) << "\n";

  // Fig. 3: the affine stage of our flow alone (before tiling), to show
  // the clean fused/distributed structure the DL model selects.
  poly::ScheduleMap schedules = transform::computeAffineTransform(scop);
  ir::Program figure3 = poly::applySchedules(scop, schedules);
  std::cout << "=== Fig. 3 — poly+AST affine stage ===\n"
            << ir::printProgram(figure3) << "\n";
  for (const auto& [id, sched] : schedules)
    std::cout << "schedule for statement " << id << ":\n"
              << sched.str() << "\n";

  // And the full flow with the AST stage on top.
  ir::Program full = transform::optimize(input);
  std::cout << "\n=== full poly+AST flow (tiled + register-tiled) ===\n"
            << ir::printProgram(full);
  return 0;
}
