// Quickstart: define a kernel with the builder API, run the full poly+AST
// optimization flow (Algorithm 1), inspect the generated code, and verify
// the transformation with the interpreter oracle.
//
//   $ ./examples/quickstart
#include <iostream>

#include "exec/interp.hpp"
#include "ir/builder.hpp"
#include "transform/flow.hpp"

using namespace polyast;

int main() {
  // A two-statement kernel: scale a matrix, then accumulate a product —
  // the gemm pattern.
  ir::ProgramBuilder b("my_gemm");
  b.param("N", 256);
  b.array("C", {b.p("N"), b.p("N")});
  b.array("A", {b.p("N"), b.p("N")});
  b.array("B", {b.p("N"), b.p("N")});
  auto v = [](const char* n) { return ir::AffExpr::term(n); };
  b.beginLoop("i", 0, b.p("N"));
  b.beginLoop("j", 0, b.p("N"));
  b.stmt("scale", "C", {v("i"), v("j")}, ir::AssignOp::MulAssign,
         ir::floatLit(0.5));
  b.beginLoop("k", 0, b.p("N"));
  b.stmt("accum", "C", {v("i"), v("j")}, ir::AssignOp::AddAssign,
         ir::arrayRef("A", {v("i"), v("k")}) *
             ir::arrayRef("B", {v("k"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  ir::Program program = b.build();

  std::cout << "=== input program ===\n" << ir::printProgram(program);

  // Run the end-to-end flow: DL-guided affine transformation, skewing,
  // parallelism detection, tiling, register tiling.
  transform::FlowOptions options;
  options.ast.tileSize = 32;
  transform::FlowReport report;
  ir::Program optimized = transform::optimize(program, options, &report);

  std::cout << "\n=== optimized program ===\n" << ir::printProgram(optimized);
  std::cout << "\naffine stage: "
            << (report.affineStageSucceeded ? "ok" : "fell back to identity")
            << ", skews: " << report.skewsApplied
            << ", tiled bands: " << report.bandsTiled
            << ", unrolled loops: " << report.loopsUnrolled << "\n";

  // Differential validation with the interpreter (small sizes).
  exec::Context before(program, {{"N", 24}});
  exec::Context after(optimized, {{"N", 24}});
  before.seedAll();
  after.seedAll();
  exec::run(program, before);
  exec::run(optimized, after);
  std::cout << "max |diff| original vs optimized: "
            << before.maxAbsDiff(after) << "\n";
  return before.maxAbsDiff(after) == 0.0 ? 0 : 1;
}
